package parallel

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"factorml/internal/core"
)

// DefaultChunkRows is the number of stream rows grouped into one work chunk
// by callers that have no better block structure to follow. It is a fixed
// constant — never derived from the worker count — because chunk geometry
// determines the floating-point reduction order (see the package comment).
const DefaultChunkRows = 256

// Workers resolves a NumWorkers configuration knob: 0 selects
// runtime.NumCPU(), anything below 1 clamps to 1 (sequential), and any
// other value is used as given.
func Workers(n int) int {
	if n == 0 {
		return runtime.NumCPU()
	}
	if n < 1 {
		return 1
	}
	return n
}

// errAborted is handed to the producer once the run has failed elsewhere;
// Run itself always returns the original error.
var errAborted = errors.New("parallel: run aborted")

// RowChunk is a pooled batch of dense rows copied out of a training stream:
// N rows of width D flattened row-major, starting at global row index
// Start, optionally with one scalar per row (Ys). The GMM and NN trainers
// share this type so the determinism-critical chunk geometry lives in one
// place.
type RowChunk struct {
	Start int
	N     int
	D     int
	Rows  []float64
	Ys    []float64
}

var rowChunkPool = sync.Pool{New: func() any { return new(RowChunk) }}

// GetRowChunk returns a pooled chunk with capacity for DefaultChunkRows
// rows of width d (withY adds the per-row scalar column), positioned at
// global row index start.
func GetRowChunk(start, d int, withY bool) *RowChunk {
	c := rowChunkPool.Get().(*RowChunk)
	need := DefaultChunkRows * d
	if cap(c.Rows) < need {
		c.Rows = make([]float64, need)
	}
	c.Rows = c.Rows[:need]
	if withY {
		if cap(c.Ys) < DefaultChunkRows {
			c.Ys = make([]float64, DefaultChunkRows)
		}
		c.Ys = c.Ys[:DefaultChunkRows]
	}
	c.Start = start
	c.N = 0
	c.D = d
	return c
}

// PutRowChunk recycles a chunk obtained from GetRowChunk.
func PutRowChunk(c *RowChunk) { rowChunkPool.Put(c) }

// DefaultFillGrain is the index-range grain used by RunRange.
const DefaultFillGrain = 64

// RunRange splits [0, n) into fixed grains and runs body on the worker
// pool. It is meant for cache fills whose writes land at disjoint indexes,
// so the only reduction is the op accounting: each grain charges a private
// core.Ops, and the grain counters are merged in grain order into total
// (integer sums, so the totals match the sequential accounting exactly).
func RunRange(workers, n int, body func(start, end int, ops *core.Ops) error, total *core.Ops) error {
	// Never spin up more workers than there are grains — tiny fills (a
	// handful of grains per block, once per EM pass) run inline instead of
	// paying pool startup. The grain geometry and merge order are the same
	// either way, so the results are unchanged.
	if g := (n + DefaultFillGrain - 1) / DefaultFillGrain; workers > g {
		workers = g
	}
	if workers <= 1 {
		// Sequential fills skip the Feed machinery entirely — no closures,
		// no heap traffic — with the identical grain geometry and in-order
		// op merge, so the results (and the integer op totals) are unchanged.
		for s := 0; s < n; s += DefaultFillGrain {
			e := s + DefaultFillGrain
			if e > n {
				e = n
			}
			var ops core.Ops
			if err := body(s, e, &ops); err != nil {
				return err
			}
			*total = total.Plus(ops)
		}
		return nil
	}
	return Run(workers,
		func(f *Feed[[2]int]) error {
			for s := 0; s < n; s += DefaultFillGrain {
				e := s + DefaultFillGrain
				if e > n {
					e = n
				}
				if err := f.Emit([2]int{s, e}); err != nil {
					return err
				}
			}
			return nil
		},
		func(r [2]int) (core.Ops, error) {
			var ops core.Ops
			err := body(r[0], r[1], &ops)
			return ops, err
		},
		func(ops core.Ops) error {
			*total = total.Plus(ops)
			return nil
		})
}

// Feed is the producer's handle into a Run. It is only valid for the
// duration of the produce callback and must be used from that goroutine.
type Feed[C any] struct {
	emit    func(C) error
	barrier func(func() error) error
}

// Emit hands one chunk to the pool. Chunks are worked concurrently but
// merged strictly in emission order.
func (f *Feed[C]) Emit(c C) error { return f.emit(c) }

// Barrier blocks until every chunk emitted so far has been worked and
// merged, then runs fn (which may be nil) on the producer goroutine while
// the pool is quiescent. Shared state written inside fn is safely visible
// to workers processing later chunks, and vice versa.
func (f *Feed[C]) Barrier(fn func() error) error { return f.barrier(fn) }

type job[C any] struct {
	seq int
	c   C
}

type result[R any] struct {
	seq int
	r   R
}

type barrierReq struct {
	upto int // number of chunks that must be merged before release
	done chan struct{}
}

// Run executes one deterministic chunked map-reduce pass.
//
// produce runs on the calling goroutine and emits chunks through the Feed.
// work runs on worker goroutines, one chunk at a time, and returns the
// chunk's partial result. merge runs on a single goroutine and receives the
// partial results strictly in emission order; it may be nil when chunks
// carry no reduction (pure fills into disjoint locations).
//
// With workers <= 1 everything runs inline on the calling goroutine in the
// exact same chunk/merge structure, so the produced floating-point results
// are bit-identical for every worker count.
func Run[C, R any](workers int, produce func(f *Feed[C]) error, work func(c C) (R, error), merge func(r R) error) error {
	if workers <= 1 {
		f := &Feed[C]{
			emit: func(c C) error {
				r, err := work(c)
				if err != nil {
					return err
				}
				if merge == nil {
					return nil
				}
				return merge(r)
			},
			barrier: func(fn func() error) error {
				if fn == nil {
					return nil
				}
				return fn()
			},
		}
		return produce(f)
	}

	// The reorder window bounds how far emission may run ahead of in-order
	// merging: Emit blocks once `window` chunks are outstanding, so one
	// stalled worker cannot make the merger buffer an unbounded number of
	// completed accumulators (which can be large — e.g. full gradient
	// workspaces).
	window := 4 * workers
	var (
		jobs     = make(chan job[C])
		results  = make(chan result[R], 2*workers)
		barriers = make(chan barrierReq)
		credits  = make(chan struct{}, window)
		abort    = make(chan struct{})
		failOnce sync.Once
		runErr   error
	)
	for i := 0; i < window; i++ {
		credits <- struct{}{}
	}
	fail := func(err error) {
		failOnce.Do(func() {
			runErr = err
			close(abort)
		})
	}

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// The observer is sampled once per worker lifetime; when none is
			// installed the loop carries no timing at all.
			wobs := loadWorkerObserver()
			var chunks int64
			var busy time.Duration
			if wobs != nil {
				defer func() { wobs(WorkerEvent{Worker: id, Chunks: chunks, Busy: busy}) }()
			}
			for jb := range jobs {
				var t0 time.Time
				if wobs != nil {
					t0 = time.Now()
				}
				r, err := work(jb.c)
				if wobs != nil {
					busy += time.Since(t0)
					chunks++
				}
				if err != nil {
					fail(err)
					return
				}
				select {
				case results <- result[R]{seq: jb.seq, r: r}:
				case <-abort:
					return
				}
			}
		}(i)
	}

	mergerDone := make(chan struct{})
	go func() {
		defer close(mergerDone)
		next := 0
		pending := make(map[int]R)
		var waiting []barrierReq
		release := func() {
			kept := waiting[:0]
			for _, b := range waiting {
				if b.upto <= next {
					close(b.done)
				} else {
					kept = append(kept, b)
				}
			}
			waiting = kept
		}
		for {
			select {
			case res, ok := <-results:
				if !ok {
					return
				}
				pending[res.seq] = res.r
				for {
					r, ok := pending[next]
					if !ok {
						break
					}
					delete(pending, next)
					if merge != nil {
						if err := merge(r); err != nil {
							fail(err)
							return
						}
					}
					next++
					// Each merged chunk returns one emission credit; the
					// channel has capacity for every outstanding token, so
					// this never blocks.
					credits <- struct{}{}
				}
				release()
			case b := <-barriers:
				if b.upto <= next {
					close(b.done)
				} else {
					waiting = append(waiting, b)
				}
			case <-abort:
				return
			}
		}
	}()

	seq := 0
	f := &Feed[C]{
		emit: func(c C) error {
			select {
			case <-credits:
			case <-abort:
				return errAborted
			}
			select {
			case jobs <- job[C]{seq: seq, c: c}:
				seq++
				return nil
			case <-abort:
				return errAborted
			}
		},
		barrier: func(fn func() error) error {
			done := make(chan struct{})
			select {
			case barriers <- barrierReq{upto: seq, done: done}:
			case <-abort:
				return errAborted
			}
			select {
			case <-done:
			case <-abort:
				return errAborted
			}
			if fn == nil {
				return nil
			}
			return fn()
		},
	}
	prodErr := produce(f)
	close(jobs)
	wg.Wait()
	close(results)
	<-mergerDone

	if runErr != nil {
		return runErr
	}
	if errors.Is(prodErr, errAborted) {
		// Aborted without a recorded cause cannot happen, but never surface
		// the sentinel.
		return nil
	}
	return prodErr
}
