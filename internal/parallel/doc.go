// Package parallel is the shared execution engine that lets the trainers
// split one pass over the fact tuples across worker goroutines without
// giving up the paper's exactness guarantee.
//
// # Determinism contract
//
// Floating-point addition is not associative, so a naive parallel reduction
// would make the trained model depend on goroutine scheduling and on the
// worker count. This engine removes both dependencies:
//
//   - The producer cuts the stream into chunks whose boundaries depend only
//     on the data (fixed chunk row counts, block boundaries), never on the
//     number of workers.
//   - Each chunk is processed against its own accumulator by whichever
//     worker picks it up; workers share nothing.
//   - Chunk accumulators are merged into the global state in chunk order,
//     by a single goroutine, regardless of the order in which workers
//     finish.
//
// The sequence of floating-point operations applied to any accumulator is
// therefore a pure function of the input stream and the chunk geometry.
// Training with Workers(1) — which runs the identical chunked structure
// inline, with no goroutines — produces bit-for-bit the same model as
// training with any other worker count. The determinism tests in
// internal/gmm and internal/nn assert exactly this.
//
// # Barriers
//
// Run's producer may call Feed.Barrier to wait until every chunk emitted so
// far has been worked and merged, and then run a function on the producer
// goroutine while the pool is quiescent. The trainers use barriers at
// R1-block boundaries: per-block dimension caches are refilled, and Block-
// mode gradient steps are applied, only while no worker is in flight. All
// synchronization is by channel hand-off, so the code is clean under the
// race detector.
package parallel
