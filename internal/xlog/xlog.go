// Package xlog is a dependency-free leveled JSON logger for the serving
// stack. Every line is one JSON object with ts/level/msg plus the
// caller's key-value pairs, and — when the context passed in carries a
// request trace (internal/trace) — the request's trace_id, so a log
// line joins against /debug/traces and the X-Request-Id header without
// any correlation machinery.
//
// A nil *Logger is valid and silent, mirroring the nil-safe discipline
// of the trace package: call sites never need a conditional.
package xlog

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"factorml/internal/trace"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// ParseLevel maps "debug"/"info"/"warn"/"error" (case-insensitive) to a
// Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("xlog: unknown level %q (want debug|info|warn|error)", s)
}

// Logger writes one JSON object per line. Safe for concurrent use; the
// zero-value-adjacent nil Logger drops everything.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min atomic.Int32
}

// New builds a logger writing to w at the given minimum level.
func New(w io.Writer, min Level) *Logger {
	l := &Logger{w: w}
	l.min.Store(int32(min))
	return l
}

// SetLevel changes the minimum level at runtime.
func (l *Logger) SetLevel(min Level) {
	if l != nil {
		l.min.Store(int32(min))
	}
}

// Enabled reports whether a line at lvl would be written — callers can
// skip expensive field construction.
func (l *Logger) Enabled(lvl Level) bool {
	return l != nil && lvl >= Level(l.min.Load())
}

// Debug logs at debug level. kv alternates keys and values.
func (l *Logger) Debug(ctx trace.Context, msg string, kv ...any) { l.log(ctx, LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(ctx trace.Context, msg string, kv ...any) { l.log(ctx, LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(ctx trace.Context, msg string, kv ...any) { l.log(ctx, LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(ctx trace.Context, msg string, kv ...any) { l.log(ctx, LevelError, msg, kv) }

func (l *Logger) log(ctx trace.Context, lvl Level, msg string, kv []any) {
	if !l.Enabled(lvl) {
		return
	}
	m := make(map[string]any, len(kv)/2+5)
	m["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	m["level"] = lvl.String()
	m["msg"] = msg
	if ctx != nil {
		if id := trace.RequestID(ctx); id != "" {
			m["trace_id"] = id
		}
	}
	for i := 0; i+1 < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			k = fmt.Sprint(kv[i])
		}
		m[k] = jsonable(kv[i+1])
	}
	if len(kv)%2 == 1 {
		m["arg"] = jsonable(kv[len(kv)-1])
	}
	line := render(m)
	l.mu.Lock()
	_, _ = l.w.Write(line)
	l.mu.Unlock()
}

// jsonable coerces values json.Marshal would reject (error, fmt.Stringer
// fallbacks) into strings so a bad field never drops the whole line.
func jsonable(v any) any {
	switch x := v.(type) {
	case nil:
		return nil
	case error:
		return x.Error()
	case time.Duration:
		return x.String()
	}
	if _, err := json.Marshal(v); err != nil {
		return fmt.Sprint(v)
	}
	return v
}

// render marshals with ts/level/msg/trace_id first and the remaining
// keys sorted, so lines are stable and grep-friendly.
func render(m map[string]any) []byte {
	head := []string{"ts", "level", "msg", "trace_id"}
	var rest []string
	seen := map[string]bool{"ts": true, "level": true, "msg": true, "trace_id": true}
	for k := range m {
		if !seen[k] {
			rest = append(rest, k)
		}
	}
	sort.Strings(rest)
	var b strings.Builder
	b.WriteByte('{')
	first := true
	writeKV := func(k string) {
		v, ok := m[k]
		if !ok {
			return
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		kb, _ := json.Marshal(k)
		vb, err := json.Marshal(v)
		if err != nil {
			vb, _ = json.Marshal(fmt.Sprint(v))
		}
		b.Write(kb)
		b.WriteByte(':')
		b.Write(vb)
	}
	for _, k := range head {
		writeKV(k)
	}
	for _, k := range rest {
		writeKV(k)
	}
	b.WriteString("}\n")
	return []byte(b.String())
}
