package xlog

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"factorml/internal/trace"
)

func decodeLine(t *testing.T, line []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatalf("line %q is not JSON: %v", line, err)
	}
	return m
}

func TestLevelsAndFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelWarn)
	ctx := context.Background()
	l.Debug(ctx, "d")
	l.Info(ctx, "i")
	l.Warn(ctx, "w")
	l.Error(ctx, "e")
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2: %s", len(lines), buf.String())
	}
	if m := decodeLine(t, lines[0]); m["level"] != "warn" || m["msg"] != "w" {
		t.Fatalf("bad first line: %v", m)
	}
	if m := decodeLine(t, lines[1]); m["level"] != "error" {
		t.Fatalf("bad second line: %v", m)
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelInfo) {
		t.Fatal("Enabled disagrees with the configured level")
	}
	l.SetLevel(LevelDebug)
	buf.Reset()
	l.Debug(ctx, "now visible")
	if buf.Len() == 0 {
		t.Fatal("SetLevel(debug) must enable debug lines")
	}
}

func TestTraceIDStamping(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	tr := trace.New(trace.Config{SlowThreshold: time.Hour})
	ctx, trc, reqID := tr.StartRequest(context.Background(), "r", "")
	l.Info(ctx, "handling", "endpoint", "predict")
	trc.Finish(200)
	m := decodeLine(t, bytes.TrimSpace(buf.Bytes()))
	if m["trace_id"] != reqID {
		t.Fatalf("trace_id %v, want %v", m["trace_id"], reqID)
	}
	if m["endpoint"] != "predict" {
		t.Fatalf("endpoint %v", m["endpoint"])
	}
	// Key order: ts, level, msg, trace_id lead the line.
	s := buf.String()
	if !strings.HasPrefix(s, `{"ts":`) || strings.Index(s, `"trace_id"`) > strings.Index(s, `"endpoint"`) {
		t.Fatalf("unexpected key order: %s", s)
	}
}

func TestAwkwardValuesNeverDropALine(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	l.Info(context.Background(), "m",
		"err", errors.New("boom"),
		"dur", 1500*time.Millisecond,
		"fn", func() {}, // unmarshalable
		"odd-trailing")
	m := decodeLine(t, bytes.TrimSpace(buf.Bytes()))
	if m["err"] != "boom" || m["dur"] != "1.5s" {
		t.Fatalf("bad coercion: %v", m)
	}
	if _, ok := m["fn"]; !ok {
		t.Fatal("unmarshalable value must be stringified, not dropped")
	}
	if m["arg"] != "odd-trailing" {
		t.Fatalf("odd trailing value lost: %v", m)
	}
}

func TestNilLoggerIsSilent(t *testing.T) {
	var l *Logger
	l.Info(context.Background(), "dropped")
	l.Error(nil, "dropped")
	l.SetLevel(LevelDebug)
	if l.Enabled(LevelError) {
		t.Fatal("nil logger must report disabled")
	}
}

func TestConcurrentWritesStayLineAtomic(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Info(context.Background(), "tick", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, ln := range lines {
		decodeLine(t, ln)
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "INFO": LevelInfo, "Warning": LevelWarn, " error ": LevelError} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel must reject unknown levels")
	}
}
