package plan

import (
	"factorml/internal/core"
	"factorml/internal/join"
	"factorml/internal/storage"
)

// The cost model prices exactly the kernels the trainers charge into
// Stats.Ops at their call sites (see internal/gmm, internal/nn,
// core.FillQuadCache/FactQuad), composed with Ops.Add and Ops.Scale:
//
//	dense EM, per row, per component, per iteration
//	    E:  sub(d) + quadform(d)
//	    M1: axpy(d)
//	    M2: sub(d) + outer(d,d)
//	factorized EM, per iteration
//	    cache fills, per dimension tuple of relation i, per component:
//	        sub(wᵢ) + quadform(wᵢ) + matvec(dS×wᵢ)          (Eq. 7–12)
//	    E, per match:  sub(dS) + quadform(dS)
//	                   + Σᵢ dot(dS) + Σᵢ<ⱼ bilinear(wᵢ×wⱼ)   (Eq. 19–21)
//	    M1: axpy(dS) per match + axpy(wᵢ) per dimension tuple (Eq. 22)
//	    M2: sub(dS) + outer(dS,dS) + q·axpy(dS) + cross outers per match;
//	        sub(wᵢ) + outer(wᵢ,wᵢ) + 2·outer(dS,wᵢ) per tuple (Eq. 23–24)
//
// and the NN equivalents (§VI-A1/A3). The I/O model is the paper's
// block-nested-loops accounting: each pass reads R1 once and rescans S
// once per R1 block; Materialized pays one join plus writing T, then reads
// T per pass. Buffer-pool caching is deliberately ignored (pessimistic for
// re-reads, uniformly across strategies).

// shape extracts the quantities the formulas need.
type shape struct {
	n    int64   // fact rows
	dS   int     // fact feature width
	d    int     // joined width
	w    []int   // per-dimension-relation widths
	m    []int64 // per-dimension-relation row counts
	q    int     // number of dimension relations
	hasY bool
}

func (ss *SchemaStats) shape() shape {
	sh := shape{
		n:    ss.Fact.Stats.Rows,
		dS:   ss.Fact.Stats.Width,
		d:    ss.JoinedWidth(),
		q:    len(ss.Dims),
		hasY: ss.HasTarget,
	}
	for _, r := range ss.Dims {
		sh.w = append(sh.w, r.Stats.Width)
		sh.m = append(sh.m, r.Stats.Rows)
	}
	return sh
}

// estimateOps prices the training-math flops of one full training run.
func estimateOps(ss *SchemaStats, m ModelSpec, s Strategy) core.Ops {
	sh := ss.shape()
	var total core.Ops
	switch m.Family {
	case FamilyGMM:
		var perIter core.Ops
		if s == Factorized {
			perIter = factGMMIter(sh, m.K, m.Diagonal)
		} else {
			perIter = denseGMMIter(sh, m.K, m.Diagonal)
		}
		total.Add(perIter.Scale(int64(m.Iters)))
	case FamilyNN:
		var perEpoch core.Ops
		if s == Factorized {
			perEpoch = factNNEpoch(sh, m, ss)
		} else {
			perEpoch = denseNNEpoch(sh, m)
		}
		total.Add(perEpoch.Scale(int64(m.Epochs)))
	}
	return total
}

// denseGMMIter prices one dense EM iteration (M-GMM/S-GMM do the same
// math; they differ only in I/O).
func denseGMMIter(sh shape, k int, diagonal bool) core.Ops {
	var kernel core.Ops // per row, per component
	if diagonal {
		kernel.AddDiagQuad(sh.d) // E
		kernel.AddAxpy(sh.d)     // M1
		kernel.AddDiagQuad(sh.d) // M2
	} else {
		kernel.AddSub(sh.d) // E: PD
		kernel.AddQuadForm(sh.d)
		kernel.AddAxpy(sh.d) // M1
		kernel.AddSub(sh.d)  // M2: PD
		kernel.AddOuter(sh.d, sh.d)
	}
	return kernel.Scale(int64(k) * sh.n)
}

// factGMMIter prices one factorized EM iteration.
func factGMMIter(sh shape, k int, diagonal bool) core.Ops {
	var total core.Ops
	// Per-dimension-tuple work: cache fills (E), mean flushes (M1),
	// PD setup + covariance flushes (M2) — once per distinct tuple per
	// iteration, per component; this is the per-group reuse the strategy
	// buys with fan-out.
	for i, wi := range sh.w {
		var perTuple core.Ops
		if diagonal {
			perTuple.AddDiagQuad(wi) // E cache
			perTuple.AddAxpy(wi)     // M1 flush
			perTuple.AddDiagQuad(wi) // M2 flush
		} else {
			perTuple.AddSub(wi) // E cache: PD
			perTuple.AddQuadForm(wi)
			perTuple.AddMatVec(sh.dS, wi) // E cache: CrossS
			perTuple.AddAxpy(wi)          // M1 flush
			perTuple.AddSub(wi)           // M2: PD with new means
			perTuple.AddOuter(wi, wi)     // M2: diagonal block
			perTuple.AddOuter(sh.dS, wi)  // M2: S-R cross
			perTuple.AddOuter(wi, sh.dS)
		}
		total.Add(perTuple.Scale(int64(k) * sh.m[i]))
	}
	// Per-match work.
	var perMatch core.Ops // per joined row, per component
	if diagonal {
		perMatch.AddDiagQuad(sh.dS) // E
		perMatch.Adds += int64(sh.q)
		perMatch.AddAxpy(sh.dS)     // M1
		perMatch.AddDiagQuad(sh.dS) // M2
	} else {
		perMatch.AddSub(sh.dS) // E: PD_S
		perMatch.AddQuadForm(sh.dS)
		for range sh.w { // E: FactQuad per-part cross terms
			perMatch.AddDot(sh.dS)
			perMatch.Adds += 3
			perMatch.Mul++
		}
		for i := 0; i < sh.q; i++ { // E: dimension-dimension cross terms
			for j := i + 1; j < sh.q; j++ {
				perMatch.AddBilinear(sh.w[i], sh.w[j])
				perMatch.Adds++
				perMatch.Mul++
			}
		}
		perMatch.AddAxpy(sh.dS) // M1
		perMatch.AddSub(sh.dS)  // M2: PD_S
		perMatch.AddOuter(sh.dS, sh.dS)
		for i := 0; i < sh.q; i++ { // M2: γ-weighted PD_S sums per group
			perMatch.AddAxpy(sh.dS)
		}
		for i := 0; i < sh.q; i++ { // M2: dimension-dimension cross blocks
			for j := i + 1; j < sh.q; j++ {
				perMatch.AddOuter(sh.w[i], sh.w[j])
				perMatch.AddOuter(sh.w[j], sh.w[i])
			}
		}
	}
	total.Add(perMatch.Scale(int64(k) * sh.n))
	return total
}

// nnSizes builds the layer sizes [d, hidden…, 1].
func nnSizes(d int, hidden []int) []int {
	sizes := append([]int{d}, hidden...)
	return append(sizes, 1)
}

// denseNNEpoch prices one dense SGD epoch.
func denseNNEpoch(sh shape, m ModelSpec) core.Ops {
	sizes := nnSizes(sh.d, m.Hidden)
	layers := len(sizes) - 1
	var per core.Ops // per example
	// Forward.
	per.AddMatVec(sizes[1], sizes[0])
	per.Adds += int64(sizes[1])
	for l := 1; l < layers; l++ {
		per.AddMatVec(sizes[l+1], sizes[l])
		per.Adds += int64(sizes[l+1])
	}
	// Backward (upper layers) + input-layer gradient.
	per.Adds++
	for l := layers - 1; l >= 1; l-- {
		per.AddOuterPlain(sizes[l+1], sizes[l])
		per.Adds += int64(sizes[l+1])
		per.AddMatVec(sizes[l], sizes[l+1])
		per.Mul += int64(sizes[l])
	}
	per.AddOuterPlain(sizes[1], sizes[0])
	per.Adds += int64(sizes[1])
	return per.Scale(sh.n)
}

// factNNEpoch prices one factorized SGD epoch (§VI-A1/A3).
func factNNEpoch(sh shape, m ModelSpec, ss *SchemaStats) core.Ops {
	sizes := nnSizes(sh.d, m.Hidden)
	layers := len(sizes) - 1
	nh0 := sizes[1]
	var total core.Ops

	// Dimension cache fills: W₀ᵢ·xᵢ per distinct tuple. R1 tuples fill once
	// per epoch (each belongs to one block); resident relations refill per
	// block under Block-mode updates, once per epoch otherwise.
	refills := int64(1)
	if m.BlockMode {
		refills = ss.numBlocks(m.BlockPages)
	}
	for i, wi := range sh.w {
		var fill core.Ops
		fill.AddMatVec(nh0, wi)
		times := sh.m[i]
		if i > 0 {
			times *= refills
		}
		total.Add(fill.Scale(times))
	}

	// Per-match forward/backward.
	var per core.Ops
	per.AddMatVec(nh0, sh.dS)              // W₀ₛ·xₛ
	per.Adds += int64(sh.q+1) * int64(nh0) // cached part adds + bias
	for l := 1; l < layers; l++ {
		per.AddMatVec(sizes[l+1], sizes[l])
		per.Adds += int64(sizes[l+1])
	}
	per.Adds++
	for l := layers - 1; l >= 1; l-- {
		per.AddOuterPlain(sizes[l+1], sizes[l])
		per.Adds += int64(sizes[l+1])
		per.AddMatVec(sizes[l], sizes[l+1])
		per.Mul += int64(sizes[l])
	}
	per.AddOuterPlain(nh0, sh.dS) // input gradient, fact columns
	per.Adds += int64(nh0)
	if m.GroupedGradient {
		per.Adds += int64(sh.q) * int64(nh0) // Σδ per group
	} else {
		for _, wi := range sh.w {
			per.AddOuterPlain(nh0, wi) // input gradient, dimension columns
		}
	}
	total.Add(per.Scale(sh.n))

	// Grouped-gradient flushes: one outer product per distinct tuple.
	if m.GroupedGradient {
		for i, wi := range sh.w {
			var flush core.Ops
			flush.AddOuterPlain(nh0, wi)
			times := sh.m[i]
			if i > 0 {
				times *= refills
			}
			total.Add(flush.Scale(times))
		}
	}
	return total
}

// ---------------------------------------------------------------------------
// Page-I/O model.
// ---------------------------------------------------------------------------

// numBlocks estimates how many R1 blocks one block-nested-loops pass
// produces (each rescans the fact table once).
func (ss *SchemaStats) numBlocks(blockPages int) int64 {
	if blockPages <= 0 {
		blockPages = join.DefaultBlockPages
	}
	r1p := ss.Dims[0].Stats.Pages
	if r1p <= 0 {
		return 1
	}
	nb := (r1p + int64(blockPages) - 1) / int64(blockPages)
	if nb < 1 {
		nb = 1
	}
	return nb
}

// tPages estimates the page count of the materialized join result T.
func (ss *SchemaStats) tPages() int64 {
	rec := 8 * (1 + ss.JoinedWidth())
	if ss.HasTarget {
		rec += 8
	}
	perPage := storage.PageDataSize / rec
	if perPage < 1 {
		perPage = 1
	}
	n := ss.Fact.Stats.Rows
	return (n + int64(perPage) - 1) / int64(perPage)
}

// estimatePages prices the page accesses (reads + writes) of a run.
func estimatePages(ss *SchemaStats, m ModelSpec, s Strategy) int64 {
	// Passes over the data: EM reads the rows once for initialization and
	// three times per iteration; SGD once per epoch.
	var passes int64
	switch m.Family {
	case FamilyGMM:
		passes = 1 + 3*int64(m.Iters)
	case FamilyNN:
		passes = int64(m.Epochs)
	}
	resident := int64(0)
	for _, r := range ss.Dims[1:] {
		resident += r.Stats.Pages
	}
	joinPass := ss.Dims[0].Stats.Pages + ss.numBlocks(m.BlockPages)*ss.Fact.Stats.Pages
	switch s {
	case Materialized:
		tp := ss.tPages()
		return resident + joinPass + tp + passes*tp
	default: // Streaming, Factorized: identical access path
		return resident + passes*joinPass
	}
}
