package plan

import (
	"testing"

	"factorml/internal/join"
	"factorml/internal/storage"
)

// fabricate builds a SchemaStats by hand — the planner prices catalog
// numbers, so tests need no actual data.
func fabricate(n, factPages int64, dS int, dims ...Relation) *SchemaStats {
	return &SchemaStats{
		Fact:      Relation{Name: "fact", Stats: storage.TableStats{Rows: n, Pages: factPages, Width: dS}},
		Dims:      dims,
		HasTarget: true,
	}
}

func dim(name string, rows, pages int64, width int) Relation {
	return Relation{Name: name, Stats: storage.TableStats{Rows: rows, Pages: pages, Width: width}}
}

// TestPlannerWideDimensionFactorizedWins: a wide dimension relation with
// high fan-out (100k fact rows over 50 dimension tuples) is the paper's
// headline case — per-tuple work dominates the dense quadratic form, so
// Factorized must win for both families.
func TestPlannerWideDimensionFactorizedWins(t *testing.T) {
	ss := fabricate(100_000, 500, 2, dim("wide", 50, 2, 40))
	for _, m := range []ModelSpec{
		{Family: FamilyGMM, K: 3, Iters: 5},
		{Family: FamilyNN, Hidden: []int{16}, Epochs: 5},
	} {
		p, err := Choose(ss, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if p.Chosen != Factorized {
			t.Errorf("%s: chose %v, want factorized\n%+v", m.Family, p.Chosen, p.Estimates)
		}
		// The factorized flop estimate must be well below the dense one —
		// d = 42 vs per-match work in dS = 2. The GMM saving is quadratic
		// (covariance outer products); the NN saving is the forward matvec
		// only (the input-layer gradient still touches every column), so it
		// is real but smaller.
		fo := p.Estimate(Factorized).Ops.Total()
		so := p.Estimate(Streaming).Ops.Total()
		if fo >= so {
			t.Errorf("%s: factorized flops %d not below streaming %d", m.Family, fo, so)
		}
		if m.Family == FamilyGMM && fo*2 > so {
			t.Errorf("gmm: factorized flops %d not <= half of streaming %d", fo, so)
		}
	}
}

// TestPlannerZeroWidthDimensionStreamingWins: with zero-width dimensions
// (pure key-resolution levels — the harness's zero-width edge) there is
// nothing to factorize, so the F estimate is S plus per-part overhead; a
// single-block join with a single EM iteration leaves Materialized paying
// its join+write premium for nothing — Streaming wins, Materialized stays
// competitive (the tiny-dim/huge-fact edge of the issue: T is actually
// *narrower* than S here because it drops the fk column, so with more
// passes Materialized overtakes — TestPlannerHugeFactManyPassesMaterializedWins).
func TestPlannerZeroWidthDimensionStreamingWins(t *testing.T) {
	ss := fabricate(50_000, 245, 2, dim("keysonly", 100, 1, 0))
	m := ModelSpec{Family: FamilyGMM, K: 3, Iters: 1}
	p, err := Choose(ss, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Chosen != Streaming {
		t.Fatalf("chose %v, want streaming\n%+v", p.Chosen, p.Estimates)
	}
	// Materialized is competitive: same flops, and the page premium is the
	// one-time materialization, bounded here at 2x of the winner's score.
	if ms, ws := p.Estimate(Materialized).Score, p.Estimates[0].Score; ms > 2*ws {
		t.Errorf("materialized score %g not competitive with winner %g", ms, ws)
	}
	if mo, so := p.Estimate(Materialized).Ops, p.Estimate(Streaming).Ops; mo != so {
		t.Errorf("M and S do identical math; ops differ: %+v vs %+v", mo, so)
	}
}

// TestPlannerHugeFactManyPassesMaterializedWins: a multi-block R1 makes
// every streamed pass rescan the huge fact table once per block, while
// Materialized pays the join once and then reads a narrow T per pass —
// with many EM iterations the amortization wins.
func TestPlannerHugeFactManyPassesMaterializedWins(t *testing.T) {
	ss := fabricate(50_000, 300, 2, dim("bigdim", 120_000, 256, 1))
	m := ModelSpec{Family: FamilyGMM, K: 3, Iters: 20}
	p, err := Choose(ss, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Chosen != Materialized {
		t.Fatalf("chose %v, want materialized\n%+v", p.Chosen, p.Estimates)
	}
	// Sanity: the multi-block pass really is the reason.
	if nb := ss.numBlocks(m.BlockPages); nb < 2 {
		t.Fatalf("numBlocks = %d, want >= 2 for this shape", nb)
	}
	if mp, sp := p.Estimate(Materialized).Pages, p.Estimate(Streaming).Pages; mp >= sp {
		t.Errorf("materialized pages %d not below streaming %d", mp, sp)
	}
}

// TestPlannerRankingAndTieBreak: estimates are sorted ascending by score,
// cover every strategy exactly once, and exact ties prefer Factorized.
func TestPlannerRanking(t *testing.T) {
	ss := fabricate(10_000, 60, 3, dim("d1", 100, 1, 4), dim("d2", 50, 1, 2))
	p, err := Choose(ss, ModelSpec{Family: FamilyGMM, K: 2, Iters: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Estimates) != 3 {
		t.Fatalf("%d estimates, want 3", len(p.Estimates))
	}
	seen := map[Strategy]bool{}
	for i, e := range p.Estimates {
		if seen[e.Strategy] {
			t.Fatalf("strategy %v listed twice", e.Strategy)
		}
		seen[e.Strategy] = true
		if i > 0 && p.Estimates[i-1].Score > e.Score {
			t.Fatalf("estimates not sorted: %g before %g", p.Estimates[i-1].Score, e.Score)
		}
	}
	if p.Chosen != p.Estimates[0].Strategy {
		t.Fatalf("Chosen %v != first estimate %v", p.Chosen, p.Estimates[0].Strategy)
	}
	// With page cost zeroed out, S and F differ only in flops; a zero-width
	// dimension makes the *pages* identical and the flops differ, so force
	// an exact tie instead via FlopsPerPage=0 on an M-vs-S comparison: both
	// do identical math, so the tie-break must prefer Streaming over
	// Materialized (pref order F > S > M).
	p2, err := Choose(ss, ModelSpec{Family: FamilyGMM, K: 2, Iters: 4}, Options{FlopsPerPage: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	var mIdx, sIdx int
	for i, e := range p2.Estimates {
		switch e.Strategy {
		case Materialized:
			mIdx = i
		case Streaming:
			sIdx = i
		}
	}
	if sIdx > mIdx {
		t.Errorf("near-zero page weight: streaming ranked %d after materialized %d", sIdx, mIdx)
	}
}

// TestPlannerValidation: nonsense specs are rejected.
func TestPlannerValidation(t *testing.T) {
	ss := fabricate(100, 1, 2, dim("d", 10, 1, 1))
	bad := []ModelSpec{
		{Family: FamilyGMM, K: 0, Iters: 5},
		{Family: FamilyGMM, K: 2, Iters: 0},
		{Family: FamilyNN, Epochs: 0, Hidden: []int{4}},
		{Family: Family(9), K: 1, Iters: 1},
	}
	for _, m := range bad {
		if _, err := Choose(ss, m, Options{}); err == nil {
			t.Errorf("spec %+v accepted, want error", m)
		}
	}
	// An empty Hidden is legal: it prices the degenerate [d, 1] network a
	// hidden-less warm start would actually train.
	if p, err := Choose(ss, ModelSpec{Family: FamilyNN, Epochs: 3}, Options{}); err != nil {
		t.Errorf("hidden-less NN spec rejected: %v", err)
	} else if len(p.Estimates) != 3 {
		t.Errorf("hidden-less NN spec produced %d estimates", len(p.Estimates))
	}
	if _, err := Choose(&SchemaStats{Fact: ss.Fact}, ModelSpec{Family: FamilyGMM, K: 1, Iters: 1}, Options{}); err == nil {
		t.Error("schema without dimensions accepted")
	}
}

// TestCollectFromCatalog: Collect reads the per-table statistics through
// the storage layer for a real (tiny) snowflake schema.
func TestCollectFromCatalog(t *testing.T) {
	db, err := storage.Open(t.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sub, err := db.CreateTable(&storage.Schema{Name: "sub", Keys: []string{"rid"}, Features: []string{"s1"}})
	if err != nil {
		t.Fatal(err)
	}
	dimT, err := db.CreateTable(&storage.Schema{
		Name: "dim", Keys: []string{"rid", "fk1"}, Features: []string{"d1", "d2"}, Refs: []string{"sub"},
	})
	if err != nil {
		t.Fatal(err)
	}
	fact, err := db.CreateTable(&storage.Schema{
		Name: "fact", Keys: []string{"sid", "fk1"}, Features: []string{"f1"}, Refs: []string{"dim"}, HasTarget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := sub.Append(&storage.Tuple{Keys: []int64{i}, Features: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 6; i++ {
		if err := dimT.Append(&storage.Tuple{Keys: []int64{i, i % 3}, Features: []float64{1, 2}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 40; i++ {
		if err := fact.Append(&storage.Tuple{Keys: []int64{i, i % 6}, Features: []float64{3}, Target: 1}); err != nil {
			t.Fatal(err)
		}
	}
	spec, err := join.NewSnowflakeSpec(fact, []*storage.Table{dimT}, db.Table)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := Collect(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Fact.Stats.Rows != 40 || len(ss.Dims) != 2 {
		t.Fatalf("Collect = %+v", ss)
	}
	if ss.Dims[0].Name != "dim" || ss.Dims[1].Name != "sub" {
		t.Fatalf("dims out of order: %s, %s", ss.Dims[0].Name, ss.Dims[1].Name)
	}
	if got := ss.Fact.Stats.FKDistinct[0]; got != 6 {
		t.Fatalf("fact fk distinct = %d, want 6", got)
	}
	if got := ss.JoinedWidth(); got != 1+2+1 {
		t.Fatalf("JoinedWidth = %d, want 4", got)
	}
	if !ss.HasTarget {
		t.Fatal("HasTarget lost")
	}
	if fo := ss.Fact.Stats.FanOut(0); fo < 6.6 || fo > 6.7 {
		t.Fatalf("fan-out = %g, want 40/6", fo)
	}
	// A plan over the collected stats chooses *something* and prices all
	// three strategies with positive costs.
	p, err := Choose(ss, ModelSpec{Family: FamilyNN, Hidden: []int{4}, Epochs: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range p.Estimates {
		if e.Ops.Total() <= 0 || e.Pages <= 0 || e.Score <= 0 {
			t.Fatalf("degenerate estimate %+v", e)
		}
	}
}
