// Package plan is the cost-based strategy planner: given catalog
// statistics for a star/snowflake join (storage.TableStats) and a model
// configuration, it prices each execution strategy — Materialized,
// Streaming, Factorized — with the same core.Ops flop accounting the
// trainers charge at their kernel call sites, plus a block-nested-loops
// page-I/O model, and returns a ranked Plan. factorml.Auto consults it to
// pick a strategy per dataset and configuration; `train -explain` prints
// its table.
package plan

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"factorml/internal/core"
	"factorml/internal/join"
	"factorml/internal/storage"
	"factorml/internal/trace"
)

// Strategy identifies one execution strategy. The values mirror the
// factorml.Algorithm constants (Materialized = 0, Streaming = 1,
// Factorized = 2), so the facade converts by integer value.
type Strategy int

const (
	// Materialized joins once, writes T to disk, trains reading T.
	Materialized Strategy = iota
	// Streaming re-executes the join on the fly every pass.
	Streaming
	// Factorized streams the join and factorizes the computation.
	Factorized
	numStrategies
)

// String names the strategy (matching factorml.Algorithm.String).
func (s Strategy) String() string {
	switch s {
	case Materialized:
		return "materialized"
	case Streaming:
		return "streaming"
	case Factorized:
		return "factorized"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// MarshalJSON renders the strategy by name (for /statsz and BENCH files).
func (s Strategy) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Relation pairs a relation name with its catalog statistics.
type Relation struct {
	Name  string             `json:"name"`
	Stats storage.TableStats `json:"stats"`
}

// SchemaStats is the planner's input: catalog statistics for the fact
// table and every dimension relation of the flattened hierarchy, in join
// (depth-first preorder) order.
type SchemaStats struct {
	Fact      Relation   `json:"fact"`
	Dims      []Relation `json:"dims"`
	HasTarget bool       `json:"has_target"`
}

// Collect reads the catalog statistics of every relation in the spec.
// Statistics are maintained at append time and persisted in the catalog,
// so this touches no tuple data unless a pre-planner catalog forces a
// one-off key rescan (see storage.TableStats).
func Collect(spec *join.Spec) (*SchemaStats, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	fs, err := spec.S.Stats()
	if err != nil {
		return nil, err
	}
	ss := &SchemaStats{
		Fact:      Relation{Name: spec.S.Schema().Name, Stats: fs},
		HasTarget: spec.S.Schema().HasTarget,
	}
	for _, r := range spec.Rs {
		rs, err := r.Stats()
		if err != nil {
			return nil, err
		}
		ss.Dims = append(ss.Dims, Relation{Name: r.Schema().Name, Stats: rs})
	}
	return ss, nil
}

// JoinedWidth returns the feature dimensionality of the (virtual) join.
func (ss *SchemaStats) JoinedWidth() int {
	d := ss.Fact.Stats.Width
	for _, r := range ss.Dims {
		d += r.Stats.Width
	}
	return d
}

// Family selects the model family being priced.
type Family int

const (
	// FamilyGMM prices EM training of a Gaussian mixture.
	FamilyGMM Family = iota
	// FamilyNN prices SGD training of a feed-forward network.
	FamilyNN
)

// String names the family.
func (f Family) String() string {
	if f == FamilyNN {
		return "nn"
	}
	return "gmm"
}

// ModelSpec carries the configuration knobs the cost model depends on.
type ModelSpec struct {
	Family Family

	// GMM: components, EM iterations priced (use MaxIter — the planner
	// cannot foresee early convergence, and all strategies run the same
	// iterations, so the ranking is unaffected), diagonal restriction.
	K        int
	Iters    int
	Diagonal bool

	// NN: hidden layer sizes, epochs, Block-mode updates (dimension caches
	// refill per block instead of per epoch), grouped layer-1 gradients.
	Hidden          []int
	Epochs          int
	BlockMode       bool
	GroupedGradient bool

	// BlockPages is the join's block size (0 = join.DefaultBlockPages); it
	// sets how many times the fact table is rescanned per pass.
	BlockPages int
}

func (m ModelSpec) validate(ss *SchemaStats) error {
	if len(ss.Dims) == 0 {
		return fmt.Errorf("plan: schema has no dimension relations")
	}
	switch m.Family {
	case FamilyGMM:
		if m.K < 1 || m.Iters < 1 {
			return fmt.Errorf("plan: GMM spec needs K >= 1 and Iters >= 1 (got K=%d, Iters=%d)", m.K, m.Iters)
		}
	case FamilyNN:
		if m.Epochs < 1 {
			return fmt.Errorf("plan: NN spec needs Epochs >= 1 (got %d)", m.Epochs)
		}
		// An empty Hidden prices the degenerate [d, 1] network — legal for
		// warm starts of hidden-less models; callers wanting the trainer's
		// default architecture must pass it explicitly.
	default:
		return fmt.Errorf("plan: unknown family %d", int(m.Family))
	}
	return nil
}

// Estimate is one strategy's priced cost: training-math flops (the same
// accounting the trainers measure into Stats.Ops), page I/O, and the
// combined score the ranking uses.
type Estimate struct {
	Strategy Strategy `json:"strategy"`
	Ops      core.Ops `json:"ops"`
	Pages    int64    `json:"pages"`
	Score    float64  `json:"score"`
}

// Plan is a ranked strategy decision.
type Plan struct {
	Chosen    Strategy     `json:"chosen"`
	Model     string       `json:"model"`
	Estimates []Estimate   `json:"estimates"` // ascending score
	Stats     *SchemaStats `json:"stats,omitempty"`
}

// Estimate returns the estimate for one strategy (zero value if absent).
func (p *Plan) Estimate(s Strategy) Estimate {
	for _, e := range p.Estimates {
		if e.Strategy == s {
			return e
		}
	}
	return Estimate{}
}

// CheapestNonMaterializing returns the best-ranked strategy that does not
// write a join table — what a live streaming refresh reuses, where
// materializing next to concurrent readers is off the table.
func (p *Plan) CheapestNonMaterializing() Strategy {
	for _, e := range p.Estimates {
		if e.Strategy != Materialized {
			return e.Strategy
		}
	}
	return Factorized
}

// Options tunes the scoring.
type Options struct {
	// FlopsPerPage converts one logical page access into flop-equivalents
	// for the combined score (default DefaultFlopsPerPage). Raising it
	// biases toward I/O-frugal strategies (Materialized for many passes
	// over a narrow T), lowering it toward compute-frugal ones.
	FlopsPerPage float64
}

// DefaultFlopsPerPage charges one flop per byte moved (8 KiB pages): a
// middle ground between a cold read (far more expensive) and a warm
// buffer-pool hit (far cheaper).
const DefaultFlopsPerPage = 8192

// Choose prices every strategy for the schema and model and returns the
// ranked plan. Ties prefer Factorized, then Streaming — never materialize
// without a measured reason to.
func Choose(ss *SchemaStats, m ModelSpec, opt Options) (*Plan, error) {
	if err := m.validate(ss); err != nil {
		return nil, err
	}
	fpp := opt.FlopsPerPage
	if fpp == 0 {
		fpp = DefaultFlopsPerPage
	}
	ests := make([]Estimate, 0, int(numStrategies))
	for s := Materialized; s < numStrategies; s++ {
		ops := estimateOps(ss, m, s)
		pages := estimatePages(ss, m, s)
		ests = append(ests, Estimate{
			Strategy: s,
			Ops:      ops,
			Pages:    pages,
			Score:    float64(ops.Total()) + fpp*float64(pages),
		})
	}
	pref := map[Strategy]int{Factorized: 0, Streaming: 1, Materialized: 2}
	sort.SliceStable(ests, func(i, j int) bool {
		if ests[i].Score != ests[j].Score {
			return ests[i].Score < ests[j].Score
		}
		return pref[ests[i].Strategy] < pref[ests[j].Strategy]
	})
	return &Plan{
		Chosen:    ests[0].Strategy,
		Model:     m.Family.String(),
		Estimates: ests,
		Stats:     ss,
	}, nil
}

// ChooseCtx is Choose with planner-decision tracing: when ctx carries a
// sampled request trace (internal/trace), the decision records a
// "plan.choose" span carrying the model family and chosen strategy, so
// a slow refresh can be attributed to the strategy the planner picked.
func ChooseCtx(ctx context.Context, ss *SchemaStats, m ModelSpec, opt Options) (*Plan, error) {
	_, sp := trace.Start(ctx, "plan.choose")
	p, err := Choose(ss, m, opt)
	if sp.Active() {
		sp.SetAttr("family", m.Family.String())
		if err != nil {
			sp.Fail(err.Error())
		} else {
			sp.SetAttr("strategy", p.Chosen.String())
		}
	}
	sp.End()
	return p, err
}
