package gmm

import (
	"math"
	"math/rand"
	"testing"

	"factorml/internal/core"
	"factorml/internal/linalg"
)

// scoreTestModel builds a well-conditioned K=3 mixture over D=6 by hand.
func scoreTestModel(t *testing.T) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	const K, D = 3, 6
	m := &Model{K: K, D: D}
	for k := 0; k < K; k++ {
		m.Weights = append(m.Weights, float64(k+1))
		mean := make([]float64, D)
		for i := range mean {
			mean[i] = rng.NormFloat64()
		}
		m.Means = append(m.Means, mean)
		// SPD covariance: A·Aᵀ + 0.5·I.
		a := linalg.NewDense(D, D)
		for i := range a.Data() {
			a.Data()[i] = 0.3 * rng.NormFloat64()
		}
		cov := linalg.NewDense(D, D)
		for i := 0; i < D; i++ {
			for j := 0; j < D; j++ {
				s := 0.0
				for l := 0; l < D; l++ {
					s += a.At(i, l) * a.At(j, l)
				}
				cov.Set(i, j, s)
			}
			cov.Set(i, i, cov.At(i, i)+0.5)
		}
		m.Covs = append(m.Covs, cov)
	}
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	for k := range m.Weights {
		m.Weights[k] /= total
	}
	return m
}

// TestScorerMatchesLogProb checks the factorized scorer against the dense
// Model.LogProb/Model.Predict on the assembled joined vector, and that its
// output is bit-identical across cache refills.
func TestScorerMatchesLogProb(t *testing.T) {
	m := scoreTestModel(t)
	p := core.NewPartition([]int{2, 3, 1}) // S ⋈ R1 ⋈ R2
	s, err := m.NewScorer(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != m.K {
		t.Fatalf("K = %d, want %d", s.K(), m.K)
	}
	rng := rand.New(rand.NewSource(9))
	sc := s.NewScratch()
	var ops core.Ops
	for trial := 0; trial < 25; trial++ {
		x := make([]float64, m.D)
		for i := range x {
			x[i] = rng.NormFloat64() * 2
		}
		caches := make([][]core.QuadCache, p.Parts()-1)
		for j := range caches {
			caches[j] = make([]core.QuadCache, s.K())
			s.FillDimCaches(caches[j], 1+j, p.Slice(x, 1+j), &ops)
		}
		got, cluster := s.Score(p.Slice(x, 0), caches, sc)
		want := m.LogProb(x)
		if d := math.Abs(got - want); d > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("trial %d: Score = %v, LogProb = %v (diff %g)", trial, got, want, d)
		}
		if dense := m.Predict(x); cluster != dense {
			t.Fatalf("trial %d: Score cluster %d, Predict %d", trial, cluster, dense)
		}

		// Refilled caches produce bit-identical scores.
		caches2 := make([][]core.QuadCache, p.Parts()-1)
		for j := range caches2 {
			caches2[j] = make([]core.QuadCache, s.K())
			s.FillDimCaches(caches2[j], 1+j, p.Slice(x, 1+j), &ops)
		}
		again, _ := s.Score(p.Slice(x, 0), caches2, sc)
		if again != got {
			t.Fatalf("trial %d: refilled caches changed the score: %v vs %v", trial, again, got)
		}
	}
	if ops.Mul == 0 {
		t.Fatal("scorer charged no multiplies")
	}
}

// TestScorerShapeValidation covers the constructor's width check.
func TestScorerShapeValidation(t *testing.T) {
	m := scoreTestModel(t)
	if _, err := m.NewScorer(core.NewPartition([]int{2, 3})); err == nil {
		t.Fatal("NewScorer accepted a partition narrower than the model")
	}
}

// TestScorerSingleComponent pins the K=1 edge the incremental-maintenance
// path leans on: responsibilities must be exactly 1 (the log-sum-exp of a
// singleton), and the factorized log-density must match the dense one.
func TestScorerSingleComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const D = 5
	m := &Model{K: 1, D: D, Weights: []float64{1}}
	mean := make([]float64, D)
	for i := range mean {
		mean[i] = rng.NormFloat64()
	}
	m.Means = append(m.Means, mean)
	cov := linalg.Eye(D)
	cov.AddDiag(0.5)
	m.Covs = append(m.Covs, cov)

	p := core.NewPartition([]int{2, 3})
	s, err := m.NewScorer(p)
	if err != nil {
		t.Fatal(err)
	}
	sc := s.NewScratch()
	x := []float64{0.3, -0.7, 1.2, 0.1, -0.4}
	caches := [][]core.QuadCache{make([]core.QuadCache, 1)}
	var ops core.Ops
	s.FillDimCaches(caches[0], 1, x[2:], &ops)

	lp, cluster := s.Score(x[:2], caches, sc)
	if cluster != 0 {
		t.Fatalf("cluster = %d, want 0", cluster)
	}
	if want := m.LogProb(x); math.Abs(lp-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Fatalf("K=1 Score = %g, LogProb = %g", lp, want)
	}
	gamma := make([]float64, 1)
	ll := s.Responsibilities(x[:2], caches, sc, gamma)
	if gamma[0] != 1 {
		t.Fatalf("K=1 responsibility = %g, want exactly 1", gamma[0])
	}
	if ll != lp {
		t.Fatalf("Responsibilities LL = %g, Score = %g", ll, lp)
	}
}
