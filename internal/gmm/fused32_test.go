package gmm

import (
	"math"
	"math/rand"
	"testing"

	"factorml/internal/core"
)

// TestFloat32ScorerAccuracy bounds the opt-in float32-storage kernel
// against the default float64 path: rounding the per-component matrices
// to float32 must perturb no log-density by more than 1e-5 relative, and
// repeated evaluations must stay bit-identical (the path is deterministic
// even though it is not bit-compatible with float64).
func TestFloat32ScorerAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][]int{{3, 4}, {2, 3, 2}, {3, 2, 2, 3, 1}} {
		p := core.NewPartition(dims)
		m := fusedTestModel(t, rng, 4, p.D)
		s64, err := m.NewScorer(p)
		if err != nil {
			t.Fatalf("NewScorer: %v", err)
		}
		s32, err := m.NewScorerF32(p)
		if err != nil {
			t.Fatalf("NewScorerF32: %v", err)
		}
		sc64, sc32 := s64.NewScratch(), s32.NewScratch()
		q := p.Parts() - 1
		c64 := make([][]core.QuadCache, q)
		c32 := make([][]core.QuadCache, q)
		for j := range c64 {
			c64[j] = make([]core.QuadCache, m.K)
			c32[j] = make([]core.QuadCache, m.K)
		}
		for trial := 0; trial < 50; trial++ {
			var fill core.Ops
			for j := range c64 {
				xr := make([]float64, p.Dims[1+j])
				for i := range xr {
					xr[i] = rng.NormFloat64()
				}
				s64.FillDimCaches(c64[j], 1+j, xr, &fill)
				s32.FillDimCaches(c32[j], 1+j, xr, &fill)
			}
			xs := make([]float64, p.Dims[0])
			for i := range xs {
				xs[i] = rng.NormFloat64()
			}
			s64.scoreComponents(xs, c64, sc64)
			s32.scoreComponents(xs, c32, sc32)
			for c := 0; c < m.K; c++ {
				f64v, f32v := sc64.logp[c], sc32.logp[c]
				if d := math.Abs(f32v - f64v); d > 1e-5*math.Max(1, math.Abs(f64v)) {
					t.Fatalf("dims %v trial %d comp %d: float32 %v vs float64 %v (diff %g)",
						dims, trial, c, f32v, f64v, d)
				}
			}
			if sc64.Ops != sc32.Ops {
				t.Fatalf("dims %v trial %d: float32 ops %+v != float64 ops %+v",
					dims, trial, sc32.Ops, sc64.Ops)
			}
			first := append([]float64(nil), sc32.logp...)
			s32.scoreComponents(xs, c32, sc32)
			for c := 0; c < m.K; c++ {
				if math.Float64bits(first[c]) != math.Float64bits(sc32.logp[c]) {
					t.Fatalf("dims %v trial %d comp %d: float32 kernel not deterministic", dims, trial, c)
				}
			}
			sc64.Ops, sc32.Ops = core.Ops{}, core.Ops{}
		}
	}
}
