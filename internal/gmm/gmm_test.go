package gmm

import (
	"math"
	"testing"

	"factorml/internal/data"
	"factorml/internal/join"
	"factorml/internal/storage"
)

func openDB(t *testing.T) *storage.Database {
	t.Helper()
	db, err := storage.Open(t.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func synthBinary(t *testing.T, db *storage.Database, nS, nR, dS, dR int) *join.Spec {
	t.Helper()
	spec, err := data.Generate(db, "t", data.SynthConfig{
		NS: nS, NR: []int{nR}, DS: dS, DR: []int{dR}, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func synthMulti(t *testing.T, db *storage.Database, nS int, nR []int, dS int, dR []int) *join.Spec {
	t.Helper()
	spec, err := data.Generate(db, "t", data.SynthConfig{
		NS: nS, NR: nR, DS: dS, DR: dR, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// The headline invariant: M-GMM, S-GMM and F-GMM produce identical models.
func TestExactnessBinary(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 600, 40, 3, 4)
	cfg := Config{K: 3, MaxIter: 6, Tol: 1e-12} // run all iterations

	m, err := TrainM(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := TrainS(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Model.MaxParamDiff(s.Model); d > 1e-9 {
		t.Fatalf("M vs S param diff %v", d)
	}
	if d := s.Model.MaxParamDiff(f.Model); d > 1e-7 {
		t.Fatalf("S vs F param diff %v", d)
	}
	// Log-likelihood traces must match too.
	if len(m.Stats.LogLikelihood) != len(f.Stats.LogLikelihood) {
		t.Fatalf("iteration counts differ: %d vs %d", len(m.Stats.LogLikelihood), len(f.Stats.LogLikelihood))
	}
	for i := range m.Stats.LogLikelihood {
		a, b := m.Stats.LogLikelihood[i], f.Stats.LogLikelihood[i]
		if math.Abs(a-b) > 1e-6*math.Max(1, math.Abs(a)) {
			t.Fatalf("iter %d: LL %v vs %v", i, a, b)
		}
	}
}

func TestExactnessMultiway(t *testing.T) {
	db := openDB(t)
	spec := synthMulti(t, db, 500, []int{30, 12}, 2, []int{3, 2})
	cfg := Config{K: 3, MaxIter: 5, Tol: 1e-12}

	m, err := TrainM(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := TrainS(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Model.MaxParamDiff(s.Model); d > 1e-9 {
		t.Fatalf("M vs S param diff %v", d)
	}
	if d := s.Model.MaxParamDiff(f.Model); d > 1e-7 {
		t.Fatalf("S vs F param diff %v", d)
	}
}

// Exactness must hold when the dimension table spans multiple BNL blocks.
func TestExactnessMultiBlock(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 800, 600, 2, 1) // R: 600 tuples, 16B records
	spec.BlockPages = 1
	cfg := Config{K: 2, MaxIter: 4, Tol: 1e-12, BlockPages: 1}
	s, err := TrainS(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Model.MaxParamDiff(f.Model); d > 1e-7 {
		t.Fatalf("S vs F param diff %v with multiple blocks", d)
	}
}

func TestLogLikelihoodNonDecreasing(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 400, 20, 2, 2)
	res, err := TrainF(db, spec, Config{K: 3, MaxIter: 10, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	lls := res.Stats.LogLikelihood
	if len(lls) < 3 {
		t.Fatalf("too few iterations recorded: %d", len(lls))
	}
	for i := 1; i < len(lls); i++ {
		if lls[i] < lls[i-1]-1e-6*math.Abs(lls[i-1]) {
			t.Fatalf("EM log-likelihood decreased at iter %d: %v -> %v", i, lls[i-1], lls[i])
		}
	}
}

func TestConvergenceStopsEarly(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 300, 15, 2, 2)
	res, err := TrainF(db, spec, Config{K: 2, MaxIter: 50, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("expected convergence within 50 iterations at tol 1e-3")
	}
	if res.Stats.Iters >= 50 {
		t.Fatalf("expected early stop, ran all %d iterations", res.Stats.Iters)
	}
}

// F-GMM must spend strictly fewer multiplications than S-GMM when there is
// redundancy to exploit (rr >> 1, dR > 0) — the Δτ claim of §V-B.
func TestFactorizedSavesOps(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 1000, 10, 3, 8) // rr=100, dR large
	cfg := Config{K: 2, MaxIter: 3, Tol: 1e-12}
	s, err := TrainS(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats.Ops.Mul >= s.Stats.Ops.Mul {
		t.Fatalf("F-GMM mults %d not below S-GMM %d", f.Stats.Ops.Mul, s.Stats.Ops.Mul)
	}
	ratio := float64(s.Stats.Ops.Mul) / float64(f.Stats.Ops.Mul)
	if ratio < 1.5 {
		t.Fatalf("expected substantial op savings at rr=100, dR=8; got ratio %.2f", ratio)
	}
}

// §V-B closed form for the Σ-step (Eq. 14): per S tuple the monolithic
// computation spends d² multiplications, the factorized one
// dS² + 2·dS·dR, plus dR² once per R tuple. Verify the measured per-pass
// counter difference matches.
func TestSigmaStepSavingRateMatchesClosedForm(t *testing.T) {
	db := openDB(t)
	nS, nR, dS, dR := 500, 25, 3, 5
	spec := synthBinary(t, db, nS, nR, dS, dR)
	cfg := Config{K: 1, MaxIter: 1, Tol: 1e-12}
	s, err := TrainS(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := dS + dR
	// Count only outer-product multiplications of the Σ pass (K=1, 1 iter).
	// Dense: per tuple AddOuter(d,d) = d² + d.
	denseSigma := int64(nS) * int64(d*d+d)
	// Factorized: per tuple AddOuter(dS,dS) + Axpy(dS) [gvec];
	// per R tuple AddOuter(dR,dR) + AddOuter(dS,dR) + AddOuter(dR,dS).
	factSigma := int64(nS)*int64(dS*dS+dS+dS) +
		int64(nR)*int64((dR*dR+dR)+(dS*dR+dS)+(dR*dS+dR))
	wantDelta := denseSigma - factSigma

	// Isolate the Σ pass by subtracting everything else: run the same
	// configs and compare total multiplication counters. The E-step and
	// µ-step savings are also positive, so check the total saving is at
	// least the Σ-step closed form and attribute-level accounting holds.
	gotDelta := s.Stats.Ops.Mul - f.Stats.Ops.Mul
	if gotDelta < wantDelta {
		t.Fatalf("measured mult saving %d below Σ-step closed form %d", gotDelta, wantDelta)
	}
}

// With well-separated clusters, the trained model should assign points from
// the same generating cluster to the same component.
func TestModelQualityOnSeparatedClusters(t *testing.T) {
	db := openDB(t)
	spec, err := data.Generate(db, "q", data.SynthConfig{
		NS: 800, NR: []int{20}, DS: 2, DR: []int{2}, Clusters: 2, Noise: 0.01, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainF(db, spec, Config{K: 4, MaxIter: 30, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	// The fitted mixture should assign high average log-density to the data.
	var ll float64
	var n int
	err = join.Stream(spec, func(_ int64, x []float64, _ float64) error {
		ll += res.Model.LogProb(x)
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	avg := ll / float64(n)
	// An unstructured standard normal baseline over 4 dims would be around
	// -0.5·d·ln(2π)·... ≈ -11 for widely spread centers; the fitted model
	// must do much better than a single wide Gaussian.
	if avg < -8 {
		t.Fatalf("average log-density %v too low — model failed to fit clusters", avg)
	}
}

func TestResponsibilitiesSumToOne(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 200, 10, 2, 2)
	res, err := TrainF(db, spec, Config{K: 3, MaxIter: 3, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 4)
	r := res.Model.Responsibilities(x)
	sum := 0.0
	for _, v := range r {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("responsibilities sum to %v", sum)
	}
	if got := res.Model.Predict(x); got < 0 || got >= 3 {
		t.Fatalf("Predict = %d out of range", got)
	}
}

func TestWeightsSumToOne(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 300, 10, 2, 3)
	res, err := TrainF(db, spec, Config{K: 4, MaxIter: 5, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, w := range res.Model.Weights {
		if w < 0 {
			t.Fatalf("negative weight %v", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestConfigValidation(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 50, 5, 1, 1)
	if _, err := TrainF(db, spec, Config{K: 0}); err == nil {
		t.Fatal("K=0 should fail")
	}
	if _, err := TrainF(db, spec, Config{K: 2, MaxIter: -1}); err == nil {
		t.Fatal("negative MaxIter should fail")
	}
	if _, err := TrainF(db, spec, Config{K: 100}); err == nil {
		t.Fatal("K > N should fail")
	}
}

// M-GMM must write T (page writes > 0); S/F must not write any pages.
func TestIOProfiles(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 400, 20, 2, 2)
	cfg := Config{K: 2, MaxIter: 2, Tol: 1e-12}
	m, err := TrainM(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats.IO.PageWrites == 0 {
		t.Fatal("M-GMM should materialize pages")
	}
	f, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats.IO.PageWrites != 0 {
		t.Fatalf("F-GMM wrote %d pages; should write none", f.Stats.IO.PageWrites)
	}
	if f.Stats.IO.LogicalReads == 0 {
		t.Fatal("F-GMM should have read pages")
	}
	// M-GMM drops its temporary table.
	for _, n := range db.TableNames() {
		if n == "T_t_S_mgmm" {
			t.Fatal("temporary materialized table was not dropped")
		}
	}
}

func TestStatsFinalLL(t *testing.T) {
	var s Stats
	if !math.IsInf(s.FinalLL(), -1) {
		t.Fatal("empty stats FinalLL should be -Inf")
	}
	s.LogLikelihood = []float64{-10, -5}
	if s.FinalLL() != -5 {
		t.Fatalf("FinalLL = %v", s.FinalLL())
	}
}

func TestCriteria(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 300, 15, 2, 2)
	res, err := TrainF(db, spec, Config{K: 2, MaxIter: 3, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Model
	// d=4, K=2: params = 1 + 8 + 2*10 = 29 (full); 1 + 8 + 8 = 17 (diag).
	if got := m.NumParams(false); got != 29 {
		t.Fatalf("NumParams(full) = %d, want 29", got)
	}
	if got := m.NumParams(true); got != 17 {
		t.Fatalf("NumParams(diag) = %d, want 17", got)
	}
	ll, n, err := m.Score(spec)
	if err != nil {
		t.Fatal(err)
	}
	if n != 300 {
		t.Fatalf("Score n = %d", n)
	}
	bic := m.BIC(ll, n, false)
	aic := m.AIC(ll, false)
	if math.IsNaN(bic) || math.IsNaN(aic) {
		t.Fatal("NaN criteria")
	}
	// BIC penalizes harder than AIC at n=300 (ln 300 > 2).
	if bic <= aic {
		t.Fatalf("BIC %v should exceed AIC %v at n=300", bic, aic)
	}
}

// Model selection sanity: when the data has 2 well-separated clusters, BIC
// at K=2 should beat K=1.
func TestBICPrefersTrueK(t *testing.T) {
	db := openDB(t)
	spec, err := data.Generate(db, "bic", data.SynthConfig{
		NS: 600, NR: []int{20}, DS: 2, DR: []int{2}, Clusters: 2, Noise: 0.01, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	var bics []float64
	for _, k := range []int{1, 2} {
		res, err := TrainF(db, spec, Config{K: k, MaxIter: 25, Tol: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		ll, n, err := res.Model.Score(spec)
		if err != nil {
			t.Fatal(err)
		}
		bics = append(bics, res.Model.BIC(ll, n, false))
	}
	if bics[1] >= bics[0] {
		t.Fatalf("BIC(K=2)=%v should beat BIC(K=1)=%v on 2-cluster data", bics[1], bics[0])
	}
}
