package gmm

import (
	"bytes"
	"strings"
	"testing"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 300, 15, 2, 3)
	res, err := TrainF(db, spec, Config{K: 3, MaxIter: 3, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Model.MaxParamDiff(loaded); d != 0 {
		t.Fatalf("round trip changed parameters by %v", d)
	}
	// The loaded model must be usable for inference.
	x := make([]float64, res.Model.D)
	if got, want := loaded.LogProb(x), res.Model.LogProb(x); got != want {
		t.Fatalf("LogProb after load: %v vs %v", got, want)
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":       "not json at all",
		"bad version":    `{"version":99,"k":1,"d":1,"weights":[1],"means":[[0]],"covs":[[1]]}`,
		"bad shape":      `{"version":1,"k":0,"d":1,"weights":[],"means":[],"covs":[]}`,
		"count mismatch": `{"version":1,"k":2,"d":1,"weights":[1],"means":[[0]],"covs":[[1]]}`,
		"mean dim":       `{"version":1,"k":1,"d":2,"weights":[1],"means":[[0]],"covs":[[1,0,0,1]]}`,
		"cov entries":    `{"version":1,"k":1,"d":2,"weights":[1],"means":[[0,0]],"covs":[[1,0,0]]}`,
	}
	for name, blob := range cases {
		if _, err := LoadModel(strings.NewReader(blob)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}
