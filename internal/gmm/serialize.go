package gmm

import (
	"encoding/json"
	"fmt"
	"io"

	"factorml/internal/linalg"
)

// modelJSON is the stable on-disk representation of a trained mixture.
type modelJSON struct {
	Version int         `json:"version"`
	K       int         `json:"k"`
	D       int         `json:"d"`
	Weights []float64   `json:"weights"`
	Means   [][]float64 `json:"means"`
	Covs    [][]float64 `json:"covs"` // row-major D×D per component
}

const modelVersion = 1

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	out := modelJSON{Version: modelVersion, K: m.K, D: m.D, Weights: m.Weights, Means: m.Means}
	for _, c := range m.Covs {
		out.Covs = append(out.Covs, c.Data())
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// LoadModel reads a model written by Save, validating its shape.
func LoadModel(r io.Reader) (*Model, error) {
	var in modelJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("gmm: decoding model: %w", err)
	}
	if in.Version != modelVersion {
		return nil, fmt.Errorf("gmm: unsupported model version %d", in.Version)
	}
	if in.K < 1 || in.D < 1 {
		return nil, fmt.Errorf("gmm: invalid model shape K=%d D=%d", in.K, in.D)
	}
	if len(in.Weights) != in.K || len(in.Means) != in.K || len(in.Covs) != in.K {
		return nil, fmt.Errorf("gmm: component count mismatch in serialized model")
	}
	m := &Model{K: in.K, D: in.D, Weights: in.Weights, Means: in.Means}
	for k, mean := range in.Means {
		if len(mean) != in.D {
			return nil, fmt.Errorf("gmm: mean %d has dim %d, want %d", k, len(mean), in.D)
		}
		if len(in.Covs[k]) != in.D*in.D {
			return nil, fmt.Errorf("gmm: covariance %d has %d entries, want %d", k, len(in.Covs[k]), in.D*in.D)
		}
		m.Covs = append(m.Covs, linalg.NewDenseData(in.D, in.D, in.Covs[k]))
	}
	return m, nil
}
