package gmm

import (
	"factorml/internal/linalg"
)

// collapseFloor is the responsibility mass below which a component is
// considered collapsed; its parameters are then frozen for the iteration.
// The check is applied identically by the dense and factorized trainers
// (the Nk accumulation order is the same), so exactness is preserved.
const collapseFloor = 1e-12

// applyMeanUpdates writes new means and weights into the model from the
// M-step accumulators: nk[k] = Σ_n γ_nk, sumMu[k] = Σ_n γ_nk · x_n.
// It returns the collapsed mask.
func applyMeanUpdates(model *Model, nk []float64, sumMu [][]float64, n int) []bool {
	collapsed := make([]bool, model.K)
	for k := 0; k < model.K; k++ {
		model.Weights[k] = nk[k] / float64(n)
		if nk[k] < collapseFloor {
			collapsed[k] = true
			continue
		}
		linalg.VecScale(model.Means[k], 1/nk[k], sumMu[k])
	}
	return collapsed
}

// applyCovUpdates writes new covariances from the M-step accumulators:
// sumCov[k] = Σ_n γ_nk (x−µ_k)(x−µ_k)ᵀ, and applies the diagonal
// regularizer. Collapsed components keep their previous covariance.
func applyCovUpdates(model *Model, nk []float64, sumCov []*linalg.Dense, collapsed []bool, regEps float64) {
	for k := 0; k < model.K; k++ {
		if collapsed[k] {
			continue
		}
		sumCov[k].Scale(1 / nk[k])
		sumCov[k].AddDiag(regEps)
		model.Covs[k].CopyFrom(sumCov[k])
	}
}

// converged applies the paper's stopping rule: the log-likelihood change
// between consecutive iterations falls below a (relative) threshold.
func converged(ll, prevLL, tol float64) bool {
	diff := ll - prevLL
	if diff < 0 {
		diff = -diff
	}
	scale := prevLL
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return diff <= tol*scale
}
