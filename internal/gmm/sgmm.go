package gmm

import (
	"time"

	"factorml/internal/join"
	"factorml/internal/storage"
)

// TrainS is the baseline S-GMM: identical EM to M-GMM, but every pass over
// T is replaced by re-executing the block-nested-loops join on the fly, so
// T is never written to disk.
func TrainS(db *storage.Database, spec *join.Spec, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	io0 := db.Pool().Stats()

	sp := *spec
	if sp.BlockPages == 0 {
		sp.BlockPages = cfg.BlockPages
	}
	runner, err := join.NewRunner(&sp)
	if err != nil {
		return nil, err
	}
	pass := func(fn func(x []float64) error) error {
		return join.StreamWith(runner, func(_ int64, x []float64, _ float64) error {
			return fn(x)
		})
	}

	d := sp.JoinedWidth()
	model, n, err := initModel(pass, d, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Model: model}
	em := emDense
	if cfg.Diagonal {
		em = emDenseDiag
	}
	if err := em(pass, d, n, cfg, model, &res.Stats); err != nil {
		return nil, err
	}
	res.Stats.IO = db.Pool().Stats().Sub(io0)
	res.Stats.TrainTime = time.Since(start)
	return res, nil
}
