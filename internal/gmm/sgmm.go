package gmm

import (
	"time"

	"factorml/internal/factor"
	"factorml/internal/join"
	"factorml/internal/storage"
)

// TrainS is the baseline S-GMM: identical EM to M-GMM, but every pass over
// T is replaced by re-executing the block-nested-loops join on the fly
// (factor.StreamedSource), so T is never written to disk.
func TrainS(db *storage.Database, spec *join.Spec, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	io0 := db.Pool().Stats()

	src, err := factor.NewStreamedSource(spec, cfg.BlockPages)
	if err != nil {
		return nil, err
	}
	return trainDense(db, src, cfg, start, io0)
}

// trainDense is the shared body of M-GMM and S-GMM: initialize over one
// scan of the source, then run the dense EM driver over the same access
// path. The two strategies differ only in the factor.Source they hand in.
func trainDense(db *storage.Database, src factor.Source, cfg Config, start time.Time, io0 storage.IOStats) (*Result, error) {
	pass := func(fn func(x []float64) error) error {
		return src.Scan(func(x []float64, _ float64) error { return fn(x) })
	}
	d := src.Width()
	model, n, err := initModel(pass, d, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Model: model}
	em := emDense
	if cfg.Diagonal {
		em = emDenseDiag
	}
	if err := em(pass, d, n, cfg, model, &res.Stats); err != nil {
		return nil, err
	}
	res.Stats.IO = db.Pool().Stats().Sub(io0)
	res.Stats.TrainTime = time.Since(start)
	return res, nil
}
