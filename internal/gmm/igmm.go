package gmm

import (
	"fmt"
	"math"
	"sync"

	"factorml/internal/core"
	"factorml/internal/factor"
	"factorml/internal/join"
	"factorml/internal/linalg"
	"factorml/internal/parallel"
	"factorml/internal/storage"
)

// Diagonal-covariance ("independent") Gaussian mixtures are the restricted
// model of Cheng & Koudas (ICDE 2019) that this paper generalizes. With a
// diagonal Σ the density factorizes per dimension, so the factorized E-step
// needs only one cached scalar per (dimension tuple, component) — there are
// no cross-relation covariance blocks at all. The same M/S/F trainers
// handle it through Config.Diagonal.

// diagState is the per-component precomputation for diagonal covariances.
type diagState struct {
	invVar  []float64
	logNorm float64
	logW    float64
}

func (m *Model) precomputeDiag() ([]diagState, error) {
	states := make([]diagState, m.K)
	for k := 0; k < m.K; k++ {
		inv := make([]float64, m.D)
		logDet := 0.0
		for i := 0; i < m.D; i++ {
			v := m.Covs[k].At(i, i)
			if v <= 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("gmm: component %d has non-positive variance %v at dim %d", k, v, i)
			}
			inv[i] = 1 / v
			logDet += math.Log(v)
		}
		states[k] = diagState{
			invVar:  inv,
			logNorm: -0.5 * (float64(m.D)*math.Log(2*math.Pi) + logDet),
			logW:    math.Log(math.Max(m.Weights[k], 1e-300)),
		}
	}
	return states, nil
}

// diagQuad computes Σ_i (x_i−µ_i)²·inv_i over a slice range.
func diagQuad(x, mu, inv []float64) float64 {
	var q float64
	for i, v := range x {
		d := v - mu[i]
		q += d * d * inv[i]
	}
	return q
}

// emDenseDiag is the diagonal-covariance EM over a dense pass source
// (M-IGMM and S-IGMM). Like emDense, every pass runs on the chunked worker
// pool with ordered merges, so the model is bit-identical for every
// cfg.NumWorkers value.
func emDenseDiag(pass passFn, d, n int, cfg Config, model *Model, stats *Stats) error {
	nw := parallel.Workers(cfg.NumWorkers)
	scan := func(onRow factor.RowFn) error {
		return pass(func(x []float64) error { return onRow(x, 0) })
	}
	k := cfg.K
	gamma := make([]float64, n*k)

	type eAcc struct {
		ll   float64
		ops  core.Ops
		logp []float64
	}
	ePool := sync.Pool{New: func() any { return &eAcc{logp: make([]float64, k)} }}
	type mAcc struct {
		ops core.Ops
		nk  []float64
		sum [][]float64 // means in pass 1, variances in pass 2
	}
	newMAcc := func() any {
		a := &mAcc{nk: make([]float64, k), sum: make([][]float64, k)}
		for c := 0; c < k; c++ {
			a.sum[c] = make([]float64, d)
		}
		return a
	}
	mPool := sync.Pool{New: newMAcc}
	getMAcc := func() any {
		a := mPool.Get().(*mAcc)
		a.ops = core.Ops{}
		for c := 0; c < k; c++ {
			a.nk[c] = 0
			linalg.VecZero(a.sum[c])
		}
		return a
	}

	nk := make([]float64, k)
	sumMu := make([][]float64, k)
	sumVar := make([][]float64, k)
	for c := 0; c < k; c++ {
		sumMu[c] = make([]float64, d)
		sumVar[c] = make([]float64, d)
	}

	prevLL := math.Inf(-1)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		states, err := model.precomputeDiag()
		if err != nil {
			return err
		}

		// E pass.
		ll := 0.0
		err = factor.RunRowPass("igmm.estep", nw, d, scan, factor.PassHooks{
			NewAcc: func() any {
				a := ePool.Get().(*eAcc)
				a.ll, a.ops = 0, core.Ops{}
				return a
			},
			Fold: func(acc any, start int, rows, _ []float64, nr int) error {
				a := acc.(*eAcc)
				for i := 0; i < nr; i++ {
					x := rows[i*d : (i+1)*d]
					for c := 0; c < k; c++ {
						q := diagQuad(x, model.Means[c], states[c].invVar)
						a.ops.AddDiagQuad(d)
						a.logp[c] = states[c].logW + states[c].logNorm - 0.5*q
					}
					lse := linalg.LogSumExp(a.logp)
					a.ll += lse
					g := gamma[(start+i)*k : (start+i+1)*k]
					for c := 0; c < k; c++ {
						g[c] = math.Exp(a.logp[c] - lse)
					}
				}
				return nil
			},
			Merge: func(acc any) error {
				a := acc.(*eAcc)
				ll += a.ll
				stats.Ops.Add(a.ops)
				ePool.Put(a)
				return nil
			}})
		if err != nil {
			return err
		}

		// M pass 1: means and weights.
		for c := 0; c < k; c++ {
			nk[c] = 0
			linalg.VecZero(sumMu[c])
		}
		err = factor.RunRowPass("igmm.mstep_means", nw, d, scan, factor.PassHooks{
			NewAcc: getMAcc,
			Fold: func(acc any, start int, rows, _ []float64, nr int) error {
				a := acc.(*mAcc)
				for i := 0; i < nr; i++ {
					x := rows[i*d : (i+1)*d]
					g := gamma[(start+i)*k : (start+i+1)*k]
					for c := 0; c < k; c++ {
						a.nk[c] += g[c]
						linalg.Axpy(g[c], x, a.sum[c])
						a.ops.AddAxpy(d)
					}
				}
				return nil
			},
			Merge: func(acc any) error {
				a := acc.(*mAcc)
				for c := 0; c < k; c++ {
					nk[c] += a.nk[c]
					linalg.VecAdd(sumMu[c], sumMu[c], a.sum[c])
				}
				stats.Ops.Add(a.ops)
				mPool.Put(a)
				return nil
			}})
		if err != nil {
			return err
		}
		collapsed := applyMeanUpdates(model, nk, sumMu, n)

		// M pass 2: per-dimension variances.
		for c := 0; c < k; c++ {
			linalg.VecZero(sumVar[c])
		}
		err = factor.RunRowPass("igmm.mstep_var", nw, d, scan, factor.PassHooks{
			NewAcc: getMAcc,
			Fold: func(acc any, start int, rows, _ []float64, nr int) error {
				a := acc.(*mAcc)
				for i := 0; i < nr; i++ {
					x := rows[i*d : (i+1)*d]
					g := gamma[(start+i)*k : (start+i+1)*k]
					for c := 0; c < k; c++ {
						mu := model.Means[c]
						sv := a.sum[c]
						gc := g[c]
						for i2, v := range x {
							pd := v - mu[i2]
							sv[i2] += gc * pd * pd
						}
						a.ops.AddDiagQuad(d)
					}
				}
				return nil
			},
			Merge: func(acc any) error {
				a := acc.(*mAcc)
				for c := 0; c < k; c++ {
					linalg.VecAdd(sumVar[c], sumVar[c], a.sum[c])
				}
				stats.Ops.Add(a.ops)
				mPool.Put(a)
				return nil
			}})
		if err != nil {
			return err
		}
		applyDiagCovUpdates(model, nk, sumVar, collapsed, cfg.RegEps)

		stats.LogLikelihood = append(stats.LogLikelihood, ll)
		stats.Iters = iter + 1
		if iter > 0 && converged(ll, prevLL, cfg.Tol) {
			stats.Converged = true
			break
		}
		prevLL = ll
	}
	return nil
}

// applyDiagCovUpdates writes diagonal covariances from per-dimension
// accumulators.
func applyDiagCovUpdates(model *Model, nk []float64, sumVar [][]float64, collapsed []bool, regEps float64) {
	for c := 0; c < model.K; c++ {
		if collapsed[c] {
			continue
		}
		model.Covs[c].Zero()
		for i := 0; i < model.D; i++ {
			model.Covs[c].Set(i, i, sumVar[c][i]/nk[c]+regEps)
		}
	}
}

// emFactorizedDiag is F-IGMM: like emFactorized but with per-relation
// scalar caches (no cross blocks exist for a diagonal covariance). The
// E-step runs on the chunked worker pool; the factorized M-step passes stay
// sequential (see emFactorized).
func emFactorizedDiag(ps *factor.PartScan, n int, cfg Config, model *Model, stats *Stats) error {
	p := ps.P
	nw := parallel.Workers(cfg.NumWorkers)
	k := cfg.K
	q := p.Parts() - 1
	dS := p.Dims[0]

	gamma := make([]float64, n*k)

	type fdAcc struct {
		ll    float64
		ops   core.Ops
		ng    int
		gamma []float64
		logp  []float64
	}
	fdPool := sync.Pool{New: func() any { return &fdAcc{logp: make([]float64, k)} }}

	nk := make([]float64, k)
	sumMuParts := make([][][]float64, p.Parts())
	sumVarParts := make([][][]float64, p.Parts())
	for i := range sumMuParts {
		sumMuParts[i] = make([][]float64, k)
		sumVarParts[i] = make([][]float64, k)
		for c := 0; c < k; c++ {
			sumMuParts[i][c] = make([]float64, p.Dims[i])
			sumVarParts[i][c] = make([]float64, p.Dims[i])
		}
	}
	sumMuFull := make([][]float64, k)
	sumVarFull := make([][]float64, k)
	for c := 0; c < k; c++ {
		sumMuFull[c] = make([]float64, p.D)
		sumVarFull[c] = make([]float64, p.D)
	}

	var qBlk []float64 // E-step cached partial quads, len(block)*k
	var wBlk []float64 // group responsibility sums
	var curBlock []*storage.Tuple

	prevLL := math.Inf(-1)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		states, err := model.precomputeDiag()
		if err != nil {
			return err
		}

		// Resident caches: partial quads per (tuple, component), filled on
		// the pool over disjoint slots.
		ps.Pass = "igmm.estep"
		qRes := make([][]float64, q-1)
		for j := 0; j < q-1; j++ {
			tuples := ps.Resident(j)
			qRes[j] = make([]float64, len(tuples)*k)
			qj := qRes[j]
			off := p.Offs[2+j]
			dj := p.Dims[2+j]
			err = ps.FillCaches(nw, tuples, &stats.Ops, func(t int, tp *storage.Tuple, ops *core.Ops) error {
				for c := 0; c < k; c++ {
					qj[t*k+c] = diagQuad(tp.Features, model.Means[c][off:off+dj], states[c].invVar[off:off+dj])
					ops.AddDiagQuad(dj)
				}
				return nil
			})
			if err != nil {
				return err
			}
		}

		// E pass.
		ll := 0.0
		idx := 0
		err = ps.RunChunks(nw, join.ParallelCallbacks{
			OnBlockStart: func(block []*storage.Tuple) error {
				need := len(block) * k
				if cap(qBlk) < need {
					qBlk = make([]float64, need)
				}
				qBlk = qBlk[:need]
				off := p.Offs[1]
				d1 := p.Dims[1]
				return ps.FillCaches(nw, block, &stats.Ops, func(i int, tp *storage.Tuple, ops *core.Ops) error {
					for c := 0; c < k; c++ {
						qBlk[i*k+c] = diagQuad(tp.Features, model.Means[c][off:off+d1], states[c].invVar[off:off+d1])
						ops.AddDiagQuad(d1)
					}
					return nil
				})
			},
			NewState: func() any {
				a := fdPool.Get().(*fdAcc)
				a.ll, a.ops, a.ng = 0, core.Ops{}, 0
				a.gamma = a.gamma[:0]
				return a
			},
			OnMatchChunk: func(state any, matches []join.Match) error {
				a := state.(*fdAcc)
				for _, m := range matches {
					for c := 0; c < k; c++ {
						qv := diagQuad(m.S.Features, model.Means[c][:dS], states[c].invVar[:dS])
						a.ops.AddDiagQuad(dS)
						qv += qBlk[m.R1*k+c]
						for j, ri := range m.Res {
							qv += qRes[j][ri*k+c]
						}
						a.ops.Adds += int64(q)
						a.logp[c] = states[c].logW + states[c].logNorm - 0.5*qv
					}
					lse := linalg.LogSumExp(a.logp)
					a.ll += lse
					for c := 0; c < k; c++ {
						a.gamma = append(a.gamma, math.Exp(a.logp[c]-lse))
					}
					a.ng++
				}
				return nil
			},
			OnChunkMerged: func(state any) error {
				a := state.(*fdAcc)
				copy(gamma[idx*k:(idx+a.ng)*k], a.gamma)
				idx += a.ng
				ll += a.ll
				stats.Ops.Add(a.ops)
				fdPool.Put(a)
				return nil
			},
		})
		if err != nil {
			return err
		}

		// M pass 1: means and weights, grouped per dimension tuple.
		for c := 0; c < k; c++ {
			nk[c] = 0
			for i := range sumMuParts {
				linalg.VecZero(sumMuParts[i][c])
			}
		}
		wRes := make([][]float64, q-1)
		for j := 0; j < q-1; j++ {
			wRes[j] = make([]float64, len(ps.Resident(j))*k)
		}
		idx = 0
		ps.Pass = "igmm.mstep_means"
		err = ps.Run(join.Callbacks{
			OnBlockStart: func(block []*storage.Tuple) error {
				need := len(block) * k
				if cap(wBlk) < need {
					wBlk = make([]float64, need)
				}
				wBlk = wBlk[:need]
				linalg.VecZero(wBlk)
				curBlock = block
				return nil
			},
			OnMatch: func(s *storage.Tuple, r1Idx int, resIdx []int) error {
				g := gamma[idx*k : (idx+1)*k]
				for c := 0; c < k; c++ {
					nk[c] += g[c]
					linalg.Axpy(g[c], s.Features, sumMuParts[0][c])
					stats.Ops.AddAxpy(dS)
					wBlk[r1Idx*k+c] += g[c]
					for j, ri := range resIdx {
						wRes[j][ri*k+c] += g[c]
					}
				}
				idx++
				return nil
			},
			OnBlockEnd: func() error {
				for i, tp := range curBlock {
					for c := 0; c < k; c++ {
						linalg.Axpy(wBlk[i*k+c], tp.Features, sumMuParts[1][c])
						stats.Ops.AddAxpy(p.Dims[1])
					}
				}
				return nil
			},
		})
		if err != nil {
			return err
		}
		for j := 0; j < q-1; j++ {
			for t, tp := range ps.Resident(j) {
				for c := 0; c < k; c++ {
					linalg.Axpy(wRes[j][t*k+c], tp.Features, sumMuParts[2+j][c])
					stats.Ops.AddAxpy(p.Dims[2+j])
				}
			}
		}
		for c := 0; c < k; c++ {
			for i := range sumMuParts {
				copy(sumMuFull[c][p.Offs[i]:p.Offs[i]+p.Dims[i]], sumMuParts[i][c])
			}
		}
		collapsed := applyMeanUpdates(model, nk, sumMuFull, n)

		// M pass 2: variances. The dimension contribution factors per
		// group: Σ_n γ (x_R−µ)² = (Σ_{n∈group} γ)·(x_R−µ)².
		for c := 0; c < k; c++ {
			for i := range sumVarParts {
				linalg.VecZero(sumVarParts[i][c])
			}
		}
		wRes2 := make([][]float64, q-1)
		for j := 0; j < q-1; j++ {
			wRes2[j] = make([]float64, len(ps.Resident(j))*k)
		}
		idx = 0
		ps.Pass = "igmm.mstep_var"
		err = ps.Run(join.Callbacks{
			OnBlockStart: func(block []*storage.Tuple) error {
				need := len(block) * k
				if cap(wBlk) < need {
					wBlk = make([]float64, need)
				}
				wBlk = wBlk[:need]
				linalg.VecZero(wBlk)
				curBlock = block
				return nil
			},
			OnMatch: func(s *storage.Tuple, r1Idx int, resIdx []int) error {
				g := gamma[idx*k : (idx+1)*k]
				for c := 0; c < k; c++ {
					mu := model.Means[c]
					sv := sumVarParts[0][c]
					gc := g[c]
					for i, v := range s.Features {
						pd := v - mu[i]
						sv[i] += gc * pd * pd
					}
					stats.Ops.AddDiagQuad(dS)
					wBlk[r1Idx*k+c] += gc
					for j, ri := range resIdx {
						wRes2[j][ri*k+c] += gc
					}
				}
				idx++
				return nil
			},
			OnBlockEnd: func() error {
				off := p.Offs[1]
				for i, tp := range curBlock {
					for c := 0; c < k; c++ {
						w := wBlk[i*k+c]
						mu := model.Means[c]
						sv := sumVarParts[1][c]
						for d2, v := range tp.Features {
							pd := v - mu[off+d2]
							sv[d2] += w * pd * pd
						}
						stats.Ops.AddDiagQuad(p.Dims[1])
					}
				}
				return nil
			},
		})
		if err != nil {
			return err
		}
		for j := 0; j < q-1; j++ {
			off := p.Offs[2+j]
			for t, tp := range ps.Resident(j) {
				for c := 0; c < k; c++ {
					w := wRes2[j][t*k+c]
					mu := model.Means[c]
					sv := sumVarParts[2+j][c]
					for d2, v := range tp.Features {
						pd := v - mu[off+d2]
						sv[d2] += w * pd * pd
					}
					stats.Ops.AddDiagQuad(p.Dims[2+j])
				}
			}
		}
		for c := 0; c < k; c++ {
			for i := range sumVarParts {
				copy(sumVarFull[c][p.Offs[i]:p.Offs[i]+p.Dims[i]], sumVarParts[i][c])
			}
		}
		applyDiagCovUpdates(model, nk, sumVarFull, collapsed, cfg.RegEps)

		stats.LogLikelihood = append(stats.LogLikelihood, ll)
		stats.Iters = iter + 1
		if iter > 0 && converged(ll, prevLL, cfg.Tol) {
			stats.Converged = true
			break
		}
		prevLL = ll
	}
	return nil
}
