package gmm

import (
	"factorml/internal/core"
)

// This file holds the float32-storage mirror of the fused E-step kernel
// (fused.go): the per-component matrices — fact-part means, flat B00
// blocks, cross blocks — are stored as float32, halving the kernel's
// memory traffic, while every product and sum accumulates in float64.
// The per-dimension-tuple caches stay float64 (they are shared with the
// training pipeline and amortized across fact tuples, so they are not
// the bandwidth-bound part). The path is strictly opt-in
// (Model.NewScorerF32 / serve.EngineConfig.Float32): rounding the
// matrices to float32 perturbs log-densities by up to ~1e-6 relative for
// well-conditioned models (TestFloat32ScorerAccuracy bounds it at 1e-5),
// so it sits outside the float64 path's bit-identical guarantees. The
// evaluation order is fixed and deterministic, and the op accounting is
// identical to the float64 kernel's.

// pairBlock32 is one flattened cross block in float32 storage.
type pairBlock32 struct {
	a  []float32 // flat di×dj block
	dj int
}

// hotComp32 is the float32-storage per-component scoring state.
type hotComp32 struct {
	muS   []float32
	b00   []float32
	pairs []pairBlock32
	logK  float64
}

// hotState32 is the float32-storage fused kernel over all K components.
// Immutable after construction; safe for concurrent scoreRow calls with
// private scratch.
type hotState32 struct {
	comps  []hotComp32
	dS     int
	rowOps core.Ops
}

// buildHot32 rounds a float64 hotState's matrices down to float32
// storage (one copy at scorer construction; scoring never converts).
func buildHot32(hs *hotState) *hotState32 {
	h32 := &hotState32{comps: make([]hotComp32, len(hs.comps)), dS: hs.dS, rowOps: hs.rowOps}
	for c := range hs.comps {
		hc, dst := &hs.comps[c], &h32.comps[c]
		dst.logK = hc.logK
		dst.muS = make([]float32, len(hc.muS))
		for i, v := range hc.muS {
			dst.muS[i] = float32(v)
		}
		dst.b00 = make([]float32, len(hc.b00))
		for i, v := range hc.b00 {
			dst.b00[i] = float32(v)
		}
		for _, pb := range hc.pairs {
			a := make([]float32, len(pb.a))
			for i, v := range pb.a {
				a[i] = float32(v)
			}
			dst.pairs = append(dst.pairs, pairBlock32{a: a, dj: pb.dj})
		}
	}
	return h32
}

// scoreRow is the float32-storage twin of hotState.scoreRow: identical
// term structure and fixed evaluation order, float64 accumulation
// throughout, only the matrix loads are float32.
func (hs *hotState32) scoreRow(xs []float64, caches [][]core.QuadCache, pds, logp []float64, ops *core.Ops) {
	dS := hs.dS
	xs = xs[:dS]
	pds = pds[:dS]
	logp = logp[:len(hs.comps)]
	for c := range hs.comps {
		hc := &hs.comps[c]
		mu := hc.muS[:dS]
		for i, v := range xs {
			pds[i] = v - float64(mu[i])
		}
		var q float64
		b00 := hc.b00
		for i := 0; i < dS; i++ {
			row := b00[i*dS : i*dS+dS]
			var s float64
			for j, pj := range pds {
				s += float64(row[j]) * pj
			}
			q += pds[i] * s
		}
		for j := range caches {
			cc := &caches[j][c]
			var r float64
			for t, v := range pds {
				r += v * cc.CrossS[t]
			}
			q += 2*r + cc.Self
		}
		if len(hc.pairs) > 0 {
			np := 0
			for i := 0; i < len(caches); i++ {
				for j := i + 1; j < len(caches); j++ {
					pb := &hc.pairs[np]
					np++
					x := caches[i][c].PD
					y := caches[j][c].PD[:pb.dj]
					a := pb.a
					dj := pb.dj
					var b float64
					for ii := range x {
						row := a[ii*dj : ii*dj+dj]
						var s float64
						for jj, yj := range y {
							s += float64(row[jj]) * yj
						}
						b += x[ii] * s
					}
					q += 2 * b
				}
			}
		}
		logp[c] = hc.logK - 0.5*q
	}
	ops.Add(hs.rowOps)
}
