package gmm

import (
	"strings"
	"testing"
)

// TestWarmStartValidation covers the Config.Init error paths shared by
// every trainer through initModel.
func TestWarmStartValidation(t *testing.T) {
	model := scoreTestModel(t) // K=3, D=6
	pass := func(fn func(x []float64) error) error {
		x := make([]float64, 6)
		for i := 0; i < 10; i++ {
			if err := fn(x); err != nil {
				return err
			}
		}
		return nil
	}

	if _, n, err := initModel(pass, 6, Config{K: 3, Init: model}); err != nil || n != 10 {
		t.Fatalf("warm start = n=%d err=%v", n, err)
	}
	got, _, err := initModel(pass, 6, Config{K: 3, Init: model})
	if err != nil {
		t.Fatal(err)
	}
	if got == model {
		t.Fatal("warm start returned the caller's model instead of a clone")
	}
	if d := got.MaxParamDiff(model); d != 0 {
		t.Fatalf("warm-start clone differs by %g", d)
	}

	if _, _, err := initModel(pass, 7, Config{K: 3, Init: model}); err == nil || !strings.Contains(err.Error(), "dimension") {
		t.Fatalf("dimension mismatch accepted: %v", err)
	}
	if _, _, err := initModel(pass, 6, Config{K: 2, Init: model}); err == nil || !strings.Contains(err.Error(), "K=") {
		t.Fatalf("K mismatch accepted: %v", err)
	}
	empty := func(fn func(x []float64) error) error { return nil }
	if _, _, err := initModel(empty, 6, Config{K: 3, Init: model}); err == nil {
		t.Fatal("warm start over an empty dataset accepted")
	}
}
