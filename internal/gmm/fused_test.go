package gmm

import (
	"math"
	"math/rand"
	"testing"

	"factorml/internal/core"
	"factorml/internal/linalg"
)

// fusedTestModel builds a well-conditioned random K-component mixture of
// dimension D.
func fusedTestModel(t *testing.T, rng *rand.Rand, K, D int) *Model {
	t.Helper()
	m := &Model{K: K, D: D}
	total := 0.0
	for k := 0; k < K; k++ {
		w := rng.Float64() + 0.1
		m.Weights = append(m.Weights, w)
		total += w
		mean := make([]float64, D)
		for i := range mean {
			mean[i] = rng.NormFloat64()
		}
		m.Means = append(m.Means, mean)
		cov := linalg.NewDense(D, D)
		a := linalg.NewDense(D, D)
		for i := range a.Data() {
			a.Data()[i] = 0.3 * rng.NormFloat64()
		}
		for i := 0; i < D; i++ {
			for j := 0; j < D; j++ {
				s := 0.0
				for l := 0; l < D; l++ {
					s += a.At(i, l) * a.At(j, l)
				}
				cov.Set(i, j, s)
			}
			cov.Set(i, i, cov.At(i, i)+0.5)
		}
		m.Covs = append(m.Covs, cov)
	}
	for k := range m.Weights {
		m.Weights[k] /= total
	}
	return m
}

// TestFusedKernelMatchesReference pins the fused all-components kernel
// against the unfused per-term reference on one-dimension and multi-way
// partitions: log-densities agree to rounding (the fused kernel's blocked
// multi-accumulator sums are a different — but fixed — summation order),
// the op accounting is identical, and repeated fused evaluations are
// bit-identical (the determinism every worker-sweep and
// incremental-vs-full harness rests on).
func TestFusedKernelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][]int{
		{3, 4},          // S ⋈ R1
		{2, 3, 2},       // S ⋈ R1 ⋈ R2 (one dim-dim pair)
		{3, 2, 2, 3, 1}, // four dimension parts (six pairs)
	}
	for _, dims := range shapes {
		p := core.NewPartition(dims)
		m := fusedTestModel(t, rng, 4, p.D)
		s, err := m.NewScorer(p)
		if err != nil {
			t.Fatalf("NewScorer: %v", err)
		}
		scF := s.NewScratch()
		scU := s.NewScratch()
		q := p.Parts() - 1
		caches := make([][]core.QuadCache, q)
		for j := range caches {
			caches[j] = make([]core.QuadCache, m.K)
		}
		for trial := 0; trial < 50; trial++ {
			// Random dimension tuples (occasionally equal to a component
			// mean slice, to drive PD entries to exact zero).
			var fill core.Ops
			for j := range caches {
				xr := make([]float64, p.Dims[1+j])
				for i := range xr {
					xr[i] = rng.NormFloat64()
				}
				if trial%7 == 0 {
					copy(xr, p.Slice(m.Means[trial%m.K], 1+j))
				}
				s.FillDimCaches(caches[j], 1+j, xr, &fill)
			}
			xs := make([]float64, p.Dims[0])
			for i := range xs {
				xs[i] = rng.NormFloat64()
			}
			if trial%5 == 0 {
				xs[0] = m.Means[trial%m.K][0] // zero PD entry in the fact part
			}
			s.scoreComponents(xs, caches, scF)
			s.scoreComponentsUnfused(xs, caches, scU)
			for c := 0; c < m.K; c++ {
				f, u := scF.logp[c], scU.logp[c]
				if d := math.Abs(f - u); d > 1e-12*math.Max(1, math.Abs(u)) {
					t.Fatalf("dims %v trial %d comp %d: fused %v vs unfused %v (diff %g)",
						dims, trial, c, f, u, d)
				}
			}
			if scF.Ops != scU.Ops {
				t.Fatalf("dims %v trial %d: fused ops %+v != unfused ops %+v",
					dims, trial, scF.Ops, scU.Ops)
			}
			// Re-evaluating with the fused kernel must reproduce the bits.
			first := append([]float64(nil), scF.logp...)
			s.scoreComponents(xs, caches, scF)
			for c := 0; c < m.K; c++ {
				if math.Float64bits(first[c]) != math.Float64bits(scF.logp[c]) {
					t.Fatalf("dims %v trial %d comp %d: fused kernel not deterministic", dims, trial, c)
				}
			}
			scF.Ops, scU.Ops = core.Ops{}, core.Ops{}
		}
	}
}
