package gmm

import (
	"fmt"
	"time"

	"factorml/internal/join"
	"factorml/internal/storage"
)

// TrainM is the baseline M-GMM (Algorithm 1): materialize T = S ⋈ R1 ⋈ … on
// disk, then run EM reading T three times per iteration. The temporary
// table is dropped when training finishes.
func TrainM(db *storage.Database, spec *join.Spec, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	io0 := db.Pool().Stats()

	tName := fmt.Sprintf("T_%s_mgmm", spec.S.Schema().Name)
	tTbl, _, err := join.Materialize(db, spec, tName)
	if err != nil {
		return nil, err
	}
	defer db.DropTable(tName) //nolint:errcheck // best-effort temp cleanup

	d := spec.JoinedWidth()
	pass := func(fn func(x []float64) error) error {
		sc := tTbl.NewScanner()
		for sc.Next() {
			if err := fn(sc.Tuple().Features); err != nil {
				return err
			}
		}
		return sc.Err()
	}

	model, n, err := initModel(pass, d, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Model: model}
	em := emDense
	if cfg.Diagonal {
		em = emDenseDiag
	}
	if err := em(pass, d, n, cfg, model, &res.Stats); err != nil {
		return nil, err
	}
	res.Stats.IO = db.Pool().Stats().Sub(io0)
	res.Stats.TrainTime = time.Since(start)
	return res, nil
}
