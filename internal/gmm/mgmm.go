package gmm

import (
	"fmt"
	"time"

	"factorml/internal/factor"
	"factorml/internal/join"
	"factorml/internal/storage"
)

// TrainM is the baseline M-GMM (Algorithm 1): materialize T = S ⋈ R1 ⋈ … on
// disk (factor.MaterializedSource), then run EM reading T three times per
// iteration. The temporary table is dropped when training finishes.
func TrainM(db *storage.Database, spec *join.Spec, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	io0 := db.Pool().Stats()

	src, err := factor.NewMaterializedSource(db, spec, fmt.Sprintf("T_%s_mgmm", spec.S.Schema().Name))
	if err != nil {
		return nil, err
	}
	defer src.Close() //nolint:errcheck // best-effort temp cleanup
	return trainDense(db, src, cfg, start, io0)
}
