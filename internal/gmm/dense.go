package gmm

import (
	"math"
	"sync"

	"factorml/internal/core"
	"factorml/internal/factor"
	"factorml/internal/linalg"
	"factorml/internal/parallel"
)

// emDense runs EM over a dense pass source. It is the engine of both M-GMM
// and S-GMM (Algorithm 1 of the paper): each iteration makes three passes —
// E-step responsibilities, M-step means, M-step covariances — through
// whatever access path `pass` encapsulates (reading the materialized T, or
// re-joining on the fly).
//
// Every pass is executed by the shared chunked row-pass operator
// (factor.RunRowPass over internal/parallel): rows are cut into fixed
// chunks, each chunk folds into its own accumulator on a worker, and the
// accumulators merge in chunk order. The trained model is therefore
// bit-identical for every cfg.NumWorkers value.
func emDense(pass passFn, d, n int, cfg Config, model *Model, stats *Stats) error {
	nw := parallel.Workers(cfg.NumWorkers)
	scan := func(onRow factor.RowFn) error {
		return pass(func(x []float64) error { return onRow(x, 0) })
	}
	k := cfg.K
	gamma := make([]float64, n*k)
	p := core.NewPartition([]int{d})

	// Per-chunk accumulators, pooled across passes and iterations.
	type eAcc struct {
		ll   float64
		ops  core.Ops
		logp []float64
		pd   []float64
	}
	ePool := sync.Pool{New: func() any {
		return &eAcc{logp: make([]float64, k), pd: make([]float64, d)}
	}}
	type m1Acc struct {
		ops   core.Ops
		nk    []float64
		sumMu [][]float64
	}
	m1Pool := sync.Pool{New: func() any {
		a := &m1Acc{nk: make([]float64, k), sumMu: make([][]float64, k)}
		for c := 0; c < k; c++ {
			a.sumMu[c] = make([]float64, d)
		}
		return a
	}}
	type m2Acc struct {
		ops    core.Ops
		pd     []float64
		sumCov []*linalg.Dense
	}
	m2Pool := sync.Pool{New: func() any {
		a := &m2Acc{pd: make([]float64, d), sumCov: make([]*linalg.Dense, k)}
		for c := 0; c < k; c++ {
			a.sumCov[c] = linalg.NewDense(d, d)
		}
		return a
	}}

	nk := make([]float64, k)
	sumMu := make([][]float64, k)
	sumCov := make([]*linalg.Dense, k)
	for c := 0; c < k; c++ {
		sumMu[c] = make([]float64, d)
		sumCov[c] = linalg.NewDense(d, d)
	}

	prevLL := math.Inf(-1)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		states, err := model.precompute(p, false)
		if err != nil {
			return err
		}

		// --- E-step pass: responsibilities and log-likelihood (Eq. 1-2, 6).
		// Workers write γ rows at disjoint indices; the per-chunk
		// log-likelihood partials merge in chunk order.
		ll := 0.0
		err = factor.RunRowPass("gmm.estep", nw, d, scan, factor.PassHooks{
			NewAcc: func() any {
				a := ePool.Get().(*eAcc)
				a.ll, a.ops = 0, core.Ops{}
				return a
			},
			Fold: func(acc any, start int, rows, _ []float64, nr int) error {
				a := acc.(*eAcc)
				for i := 0; i < nr; i++ {
					x := rows[i*d : (i+1)*d]
					for c := 0; c < k; c++ {
						linalg.VecSub(a.pd, x, model.Means[c])
						a.ops.AddSub(d)
						q := linalg.QuadForm(states[c].inv, a.pd)
						a.ops.AddQuadForm(d)
						a.logp[c] = states[c].logW + states[c].logNorm - 0.5*q
					}
					lse := linalg.LogSumExp(a.logp)
					a.ll += lse
					g := gamma[(start+i)*k : (start+i+1)*k]
					for c := 0; c < k; c++ {
						g[c] = math.Exp(a.logp[c] - lse)
					}
				}
				return nil
			},
			Merge: func(acc any) error {
				a := acc.(*eAcc)
				ll += a.ll
				stats.Ops.Add(a.ops)
				ePool.Put(a)
				return nil
			}})
		if err != nil {
			return err
		}

		// --- M-step pass 1: means and weights (Eq. 3, 5).
		for c := 0; c < k; c++ {
			nk[c] = 0
			linalg.VecZero(sumMu[c])
		}
		err = factor.RunRowPass("gmm.mstep_means", nw, d, scan, factor.PassHooks{
			NewAcc: func() any {
				a := m1Pool.Get().(*m1Acc)
				a.ops = core.Ops{}
				for c := 0; c < k; c++ {
					a.nk[c] = 0
					linalg.VecZero(a.sumMu[c])
				}
				return a
			},
			Fold: func(acc any, start int, rows, _ []float64, nr int) error {
				a := acc.(*m1Acc)
				for i := 0; i < nr; i++ {
					x := rows[i*d : (i+1)*d]
					g := gamma[(start+i)*k : (start+i+1)*k]
					for c := 0; c < k; c++ {
						a.nk[c] += g[c]
						linalg.Axpy(g[c], x, a.sumMu[c])
						a.ops.AddAxpy(d)
					}
				}
				return nil
			},
			Merge: func(acc any) error {
				a := acc.(*m1Acc)
				for c := 0; c < k; c++ {
					nk[c] += a.nk[c]
					linalg.VecAdd(sumMu[c], sumMu[c], a.sumMu[c])
				}
				stats.Ops.Add(a.ops)
				m1Pool.Put(a)
				return nil
			}})
		if err != nil {
			return err
		}
		collapsed := applyMeanUpdates(model, nk, sumMu, n)

		// --- M-step pass 2: covariances with the new means (Eq. 4).
		for c := 0; c < k; c++ {
			sumCov[c].Zero()
		}
		err = factor.RunRowPass("gmm.mstep_cov", nw, d, scan, factor.PassHooks{
			NewAcc: func() any {
				a := m2Pool.Get().(*m2Acc)
				a.ops = core.Ops{}
				for c := 0; c < k; c++ {
					a.sumCov[c].Zero()
				}
				return a
			},
			Fold: func(acc any, start int, rows, _ []float64, nr int) error {
				a := acc.(*m2Acc)
				for i := 0; i < nr; i++ {
					x := rows[i*d : (i+1)*d]
					g := gamma[(start+i)*k : (start+i+1)*k]
					for c := 0; c < k; c++ {
						linalg.VecSub(a.pd, x, model.Means[c])
						a.ops.AddSub(d)
						linalg.OuterAccum(a.sumCov[c], g[c], a.pd, a.pd)
						a.ops.AddOuter(d, d)
					}
				}
				return nil
			},
			Merge: func(acc any) error {
				a := acc.(*m2Acc)
				for c := 0; c < k; c++ {
					sumCov[c].AddScaled(1, a.sumCov[c])
				}
				stats.Ops.Add(a.ops)
				m2Pool.Put(a)
				return nil
			}})
		if err != nil {
			return err
		}
		applyCovUpdates(model, nk, sumCov, collapsed, cfg.RegEps)

		stats.LogLikelihood = append(stats.LogLikelihood, ll)
		stats.Iters = iter + 1
		if iter > 0 && converged(ll, prevLL, cfg.Tol) {
			stats.Converged = true
			break
		}
		prevLL = ll
	}
	return nil
}
