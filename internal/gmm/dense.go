package gmm

import (
	"math"

	"factorml/internal/core"
	"factorml/internal/linalg"
)

// emDense runs EM over a dense pass source. It is the engine of both M-GMM
// and S-GMM (Algorithm 1 of the paper): each iteration makes three passes —
// E-step responsibilities, M-step means, M-step covariances — through
// whatever access path `pass` encapsulates (reading the materialized T, or
// re-joining on the fly).
func emDense(pass passFn, d, n int, cfg Config, model *Model, stats *Stats) error {
	k := cfg.K
	gamma := make([]float64, n*k)
	logp := make([]float64, k)
	pd := make([]float64, d)
	p := core.NewPartition([]int{d})

	nk := make([]float64, k)
	sumMu := make([][]float64, k)
	sumCov := make([]*linalg.Dense, k)
	for i := 0; i < k; i++ {
		sumMu[i] = make([]float64, d)
		sumCov[i] = linalg.NewDense(d, d)
	}

	prevLL := math.Inf(-1)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		states, err := model.precompute(p, false)
		if err != nil {
			return err
		}

		// --- E-step pass: responsibilities and log-likelihood (Eq. 1-2, 6).
		ll := 0.0
		idx := 0
		err = pass(func(x []float64) error {
			for c := 0; c < k; c++ {
				linalg.VecSub(pd, x, model.Means[c])
				stats.Ops.AddSub(d)
				q := linalg.QuadForm(states[c].inv, pd)
				stats.Ops.AddQuadForm(d)
				logp[c] = states[c].logW + states[c].logNorm - 0.5*q
			}
			lse := linalg.LogSumExp(logp)
			ll += lse
			g := gamma[idx*k : (idx+1)*k]
			for c := 0; c < k; c++ {
				g[c] = math.Exp(logp[c] - lse)
			}
			idx++
			return nil
		})
		if err != nil {
			return err
		}

		// --- M-step pass 1: means and weights (Eq. 3, 5).
		for c := 0; c < k; c++ {
			nk[c] = 0
			linalg.VecZero(sumMu[c])
		}
		idx = 0
		err = pass(func(x []float64) error {
			g := gamma[idx*k : (idx+1)*k]
			for c := 0; c < k; c++ {
				nk[c] += g[c]
				linalg.Axpy(g[c], x, sumMu[c])
				stats.Ops.AddAxpy(d)
			}
			idx++
			return nil
		})
		if err != nil {
			return err
		}
		collapsed := applyMeanUpdates(model, nk, sumMu, n)

		// --- M-step pass 2: covariances with the new means (Eq. 4).
		for c := 0; c < k; c++ {
			sumCov[c].Zero()
		}
		idx = 0
		err = pass(func(x []float64) error {
			g := gamma[idx*k : (idx+1)*k]
			for c := 0; c < k; c++ {
				linalg.VecSub(pd, x, model.Means[c])
				stats.Ops.AddSub(d)
				linalg.OuterAccum(sumCov[c], g[c], pd, pd)
				stats.Ops.AddOuter(d, d)
			}
			idx++
			return nil
		})
		if err != nil {
			return err
		}
		applyCovUpdates(model, nk, sumCov, collapsed, cfg.RegEps)

		stats.LogLikelihood = append(stats.LogLikelihood, ll)
		stats.Iters = iter + 1
		if iter > 0 && converged(ll, prevLL, cfg.Tol) {
			stats.Converged = true
			break
		}
		prevLL = ll
	}
	return nil
}
