package gmm

import (
	"math"
	"testing"

	"factorml/internal/join"
	"factorml/internal/storage"
)

// assertBitIdentical fails unless the two results carry bit-for-bit equal
// models, log-likelihood traces and op counts.
func assertBitIdentical(t *testing.T, name string, r1, rn *Result) {
	t.Helper()
	if d := r1.Model.MaxParamDiff(rn.Model); d != 0 {
		t.Errorf("%s: max parameter diff %g between worker counts, want bit-identical", name, d)
	}
	for k, w := range r1.Model.Weights {
		if math.IsNaN(w) {
			t.Errorf("%s: weight %d is NaN", name, k)
		}
	}
	if len(r1.Stats.LogLikelihood) != len(rn.Stats.LogLikelihood) {
		t.Fatalf("%s: iteration counts differ: %d vs %d", name,
			len(r1.Stats.LogLikelihood), len(rn.Stats.LogLikelihood))
	}
	for i := range r1.Stats.LogLikelihood {
		if r1.Stats.LogLikelihood[i] != rn.Stats.LogLikelihood[i] {
			t.Errorf("%s: log-likelihood[%d] %v vs %v, want bit-identical", name,
				i, r1.Stats.LogLikelihood[i], rn.Stats.LogLikelihood[i])
		}
	}
	if r1.Stats.Ops != rn.Stats.Ops {
		t.Errorf("%s: op counts differ: %+v vs %+v", name, r1.Stats.Ops, rn.Stats.Ops)
	}
}

// TestParallelDeterminism is the engine's headline guarantee: for all three
// execution strategies the model trained with 4 workers is bit-for-bit the
// model trained sequentially. A binary and a multi-way schema are covered,
// the binary one with BlockPages=1 to force multi-block chunk barriers.
func TestParallelDeterminism(t *testing.T) {
	trainers := map[string]func(*storage.Database, *join.Spec, Config) (*Result, error){
		"M-GMM": TrainM, "S-GMM": TrainS, "F-GMM": TrainF,
	}
	schemas := []struct {
		name  string
		multi bool
	}{
		{"binary", false},
		{"multiway", true},
	}
	for _, sc := range schemas {
		db := openDB(t)
		var spec *join.Spec
		if sc.multi {
			spec = synthMulti(t, db, 1500, []int{60, 25}, 3, []int{4, 2})
		} else {
			// 600 dimension tuples span several pages, so BlockPages=1
			// exercises multi-block chunk barriers.
			spec = synthBinary(t, db, 2000, 600, 3, 5)
			spec.BlockPages = 1
		}
		for name, train := range trainers {
			cfg := Config{K: 3, MaxIter: 4, Tol: 1e-12}
			cfg.NumWorkers = 1
			r1, err := train(db, spec, cfg)
			if err != nil {
				t.Fatalf("%s/%s workers=1: %v", sc.name, name, err)
			}
			for _, w := range []int{2, 4} {
				cfg.NumWorkers = w
				rn, err := train(db, spec, cfg)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", sc.name, name, w, err)
				}
				assertBitIdentical(t, sc.name+"/"+name+"/workers="+string(rune('0'+w)), r1, rn)
			}
		}
	}
}

// TestParallelDeterminismDiagonal covers the diagonal-covariance (IGMM)
// code paths, which have their own dense and factorized EM loops.
func TestParallelDeterminismDiagonal(t *testing.T) {
	trainers := map[string]func(*storage.Database, *join.Spec, Config) (*Result, error){
		"M-IGMM": TrainM, "S-IGMM": TrainS, "F-IGMM": TrainF,
	}
	db := openDB(t)
	spec := synthBinary(t, db, 1500, 60, 3, 4)
	for name, train := range trainers {
		cfg := Config{K: 3, MaxIter: 4, Tol: 1e-12, Diagonal: true}
		cfg.NumWorkers = 1
		r1, err := train(db, spec, cfg)
		if err != nil {
			t.Fatalf("%s workers=1: %v", name, err)
		}
		cfg.NumWorkers = 4
		r4, err := train(db, spec, cfg)
		if err != nil {
			t.Fatalf("%s workers=4: %v", name, err)
		}
		assertBitIdentical(t, name, r1, r4)
	}
}
