package gmm

import (
	"factorml/internal/core"
	"factorml/internal/parallel"
)

// runRowPass drives one chunked-parallel pass over the dense row stream of
// pass: the producer copies rows into fixed-size chunks (geometry
// independent of the worker count), workers fold each chunk into an
// accumulator from newAcc, and accumulators are merged strictly in chunk
// order — so the reduction is bit-identical for every worker count.
//
// With workers <= 1 no chunks are materialized at all: each streamed row
// folds directly into the current accumulator, with merges at the same
// fixed boundaries, which reproduces the identical floating-point reduction
// without the copy.
func runRowPass(workers, d int, pass passFn,
	newAcc func() any,
	work func(acc any, start int, rows []float64, n int) error,
	merge func(acc any) error,
) error {
	if workers <= 1 {
		var acc any
		inChunk := 0
		row := 0
		err := pass(func(x []float64) error {
			if acc == nil {
				acc = newAcc()
			}
			if err := work(acc, row, x, 1); err != nil {
				return err
			}
			row++
			inChunk++
			if inChunk == parallel.DefaultChunkRows {
				if err := merge(acc); err != nil {
					return err
				}
				acc, inChunk = nil, 0
			}
			return nil
		})
		if err != nil {
			return err
		}
		if acc != nil {
			return merge(acc)
		}
		return nil
	}
	return parallel.Run(workers,
		func(f *parallel.Feed[*parallel.RowChunk]) error {
			cur := parallel.GetRowChunk(0, d, false)
			next := 0
			err := pass(func(x []float64) error {
				copy(cur.Rows[cur.N*d:(cur.N+1)*d], x)
				cur.N++
				next++
				if cur.N == parallel.DefaultChunkRows {
					if err := f.Emit(cur); err != nil {
						return err
					}
					cur = parallel.GetRowChunk(next, d, false)
				}
				return nil
			})
			if err != nil {
				return err
			}
			if cur.N > 0 {
				return f.Emit(cur)
			}
			parallel.PutRowChunk(cur)
			return nil
		},
		func(c *parallel.RowChunk) (any, error) {
			acc := newAcc()
			if err := work(acc, c.Start, c.Rows, c.N); err != nil {
				return nil, err
			}
			parallel.PutRowChunk(c)
			return acc, nil
		},
		merge)
}

// fillRange is parallel.RunRange charging the pass's op counters.
func fillRange(workers, n int, stats *Stats, body func(start, end int, ops *core.Ops) error) error {
	return parallel.RunRange(workers, n, body, &stats.Ops)
}
