package gmm

import (
	"math"
	"sync"
	"time"

	"factorml/internal/core"
	"factorml/internal/factor"
	"factorml/internal/join"
	"factorml/internal/linalg"
	"factorml/internal/parallel"
	"factorml/internal/storage"
)

// TrainF is the paper's F-GMM: EM where every pass streams the join and the
// per-tuple math is factorized across the relation partition. Quantities
// that depend only on a dimension tuple (PD_R, the LR quadratic term, the
// I_SR·PD_R cross vector, the per-group responsibility sums) are computed
// once per distinct dimension tuple per pass and reused for all matching
// fact tuples. The decomposition is exact (Eq. 7-24), so the result matches
// TrainM and TrainS.
func TrainF(db *storage.Database, spec *join.Spec, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	io0 := db.Pool().Stats()

	ps, err := factor.NewPartScan(spec, cfg.BlockPages)
	if err != nil {
		return nil, err
	}

	// Initialization streams concatenated vectors in the same order as the
	// other algorithms, so all trainers start from the identical model.
	ps.Pass = "fgmm.init"
	pass := func(fn func(x []float64) error) error {
		return ps.Scan(func(x []float64, _ float64) error { return fn(x) })
	}
	model, n, err := initModel(pass, ps.P.D, cfg)
	if err != nil {
		return nil, err
	}

	res := &Result{Model: model}
	em := emFactorized
	if cfg.Diagonal {
		em = emFactorizedDiag
	}
	if err := em(ps, n, cfg, model, &res.Stats); err != nil {
		return nil, err
	}
	res.Stats.IO = db.Pool().Stats().Sub(io0)
	res.Stats.TrainTime = time.Since(start)
	return res, nil
}

// emFactorized runs the factorized EM loop. Parts: 0 = S, 1 = the blocked
// dimension relation R1, 2+j = resident dimension relation Rs[1+j].
//
// The E-step — the dimension-cache fills and the per-match responsibility
// computation — runs on the chunked worker pool (cfg.NumWorkers): caches
// fill over disjoint index grains, matches stream through RunParallel with
// per-chunk log-likelihood/γ buffers merged in chunk order, so the model is
// bit-identical for every worker count. The M-step passes stay sequential:
// factorization already collapses their per-tuple work to the small fact
// part plus per-group flushes.
func emFactorized(ps *factor.PartScan, n int, cfg Config, model *Model, stats *Stats) error {
	p := ps.P
	nw := parallel.Workers(cfg.NumWorkers)
	k := cfg.K
	q := p.Parts() - 1 // number of dimension relations
	dS := p.Dims[0]

	gamma := make([]float64, n*k)
	pds := make([]float64, dS)
	pdBuf := make([][]float64, q) // per-part PD pointers for cross terms

	// feAcc is the per-chunk E-step accumulator: responsibilities for the
	// chunk's matches plus the partial log-likelihood. caches[j] is the
	// K-component cache run of the match's tuple in dimension part j+1 —
	// a subslice of the flat per-block/per-resident cache arrays.
	type feAcc struct {
		ll     float64
		ops    core.Ops
		ng     int
		gamma  []float64
		logp   []float64
		pds    []float64
		caches [][]core.QuadCache
	}
	fePool := sync.Pool{New: func() any {
		return &feAcc{
			logp:   make([]float64, k),
			pds:    make([]float64, dS),
			caches: make([][]core.QuadCache, q),
		}
	}}

	nk := make([]float64, k)
	// Per-part mean accumulators, assembled into full vectors for the shared
	// update helper.
	sumMuParts := make([][][]float64, p.Parts())
	for i := range sumMuParts {
		sumMuParts[i] = make([][]float64, k)
		for c := 0; c < k; c++ {
			sumMuParts[i][c] = make([]float64, p.Dims[i])
		}
	}
	sumMuFull := make([][]float64, k)
	for c := 0; c < k; c++ {
		sumMuFull[c] = make([]float64, p.D)
	}

	// Reusable per-block buffers (sized on first block).
	var blkCache []core.QuadCache // E-step: len(block)*k
	var wBlk []float64            // M1: group responsibility sums
	var pdBlk [][]float64         // M2: PD per (block tuple, component)
	var wBlk2 []float64           // M2 group sums
	var gvecBlk [][]float64       // M2: Σ γ·PD_S per group
	var curBlock []*storage.Tuple // current R1 block, shared across callbacks

	// Per-iteration accumulators hoisted out of the EM loop (the resident
	// dimension tables are loaded by the init scan and their sizes are
	// fixed, so every buffer below is allocated once and recycled —
	// FillQuadCache and VecSub overwrite, the rest are zeroed in place).
	resCache := make([][]core.QuadCache, q-1) // E-step resident caches
	wRes := make([][]float64, q-1)            // M1 resident group sums
	pdRes := make([][][]float64, q-1)         // M2 resident PDs
	wRes2 := make([][]float64, q-1)           // M2 resident group sums
	gvecRes := make([][][]float64, q-1)       // M2 Σ γ·PD_S per resident group
	for j := 0; j < q-1; j++ {
		nt := len(ps.Resident(j))
		resCache[j] = make([]core.QuadCache, nt*k)
		wRes[j] = make([]float64, nt*k)
		wRes2[j] = make([]float64, nt*k)
		pdRes[j] = make([][]float64, nt*k)
		gvecRes[j] = make([][]float64, nt*k)
		dRj := p.Dims[2+j]
		for i := range pdRes[j] {
			pdRes[j][i] = make([]float64, dRj)
			gvecRes[j][i] = make([]float64, dS)
		}
	}
	acc := make([]*core.BlockedSym, k) // M2 covariance accumulators
	sumCov := make([]*linalg.Dense, k) // assembled Σ-update destinations
	for c := 0; c < k; c++ {
		acc[c] = core.NewBlockedZero(p)
		sumCov[c] = linalg.NewDense(p.D, p.D)
	}

	prevLL := math.Inf(-1)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		states, err := model.precompute(p, true)
		if err != nil {
			return err
		}
		hot := buildHot(model, p, states)

		// ------------------------------------------------------------------
		// E-step: factorized responsibilities (Eq. 7-12 / 19-21).
		// ------------------------------------------------------------------
		// Resident caches are filled once per iteration (parallel fill,
		// disjoint (tuple, component) slots).
		ps.Pass = "fgmm.estep"
		for j := 0; j < q-1; j++ {
			rj := resCache[j]
			part := 2 + j
			err = ps.FillCaches(nw, ps.Resident(j), &stats.Ops, func(t int, tp *storage.Tuple, ops *core.Ops) error {
				for c := 0; c < k; c++ {
					core.FillQuadCache(&rj[t*k+c], states[c].blocked, part, tp.Features, model.Means[c], ops)
				}
				return nil
			})
			if err != nil {
				return err
			}
		}

		ll := 0.0
		idx := 0
		err = ps.RunChunks(nw, join.ParallelCallbacks{
			OnBlockStart: func(block []*storage.Tuple) error {
				need := len(block) * k
				if cap(blkCache) < need {
					blkCache = make([]core.QuadCache, need)
				}
				blkCache = blkCache[:need]
				return ps.FillCaches(nw, block, &stats.Ops, func(i int, tp *storage.Tuple, ops *core.Ops) error {
					for c := 0; c < k; c++ {
						core.FillQuadCache(&blkCache[i*k+c], states[c].blocked, 1, tp.Features, model.Means[c], ops)
					}
					return nil
				})
			},
			NewState: func() any {
				a := fePool.Get().(*feAcc)
				a.ll, a.ops, a.ng = 0, core.Ops{}, 0
				a.gamma = a.gamma[:0]
				return a
			},
			OnMatchChunk: func(state any, matches []join.Match) error {
				a := state.(*feAcc)
				for _, m := range matches {
					a.caches[0] = blkCache[m.R1*k : (m.R1+1)*k]
					for j, ri := range m.Res {
						a.caches[1+j] = resCache[j][ri*k : (ri+1)*k]
					}
					hot.scoreRow(m.S.Features, a.caches, a.pds, a.logp, &a.ops)
					lse := linalg.LogSumExp(a.logp)
					a.ll += lse
					for c := 0; c < k; c++ {
						a.gamma = append(a.gamma, math.Exp(a.logp[c]-lse))
					}
					a.ng++
				}
				return nil
			},
			OnChunkMerged: func(state any) error {
				a := state.(*feAcc)
				copy(gamma[idx*k:(idx+a.ng)*k], a.gamma)
				idx += a.ng
				ll += a.ll
				stats.Ops.Add(a.ops)
				fePool.Put(a)
				return nil
			},
		})
		if err != nil {
			return err
		}

		// ------------------------------------------------------------------
		// M-step pass 1: means and weights (Eq. 13 / 22). The dimension
		// contribution Σ_n γ x_R factors into x_R · (Σ_{n∈group} γ).
		// ------------------------------------------------------------------
		for c := 0; c < k; c++ {
			nk[c] = 0
			for i := range sumMuParts {
				linalg.VecZero(sumMuParts[i][c])
			}
		}
		for j := 0; j < q-1; j++ {
			linalg.VecZero(wRes[j])
		}
		idx = 0
		ps.Pass = "fgmm.mstep_means"
		err = ps.Run(join.Callbacks{
			OnBlockStart: func(block []*storage.Tuple) error {
				need := len(block) * k
				if cap(wBlk) < need {
					wBlk = make([]float64, need)
				}
				wBlk = wBlk[:need]
				linalg.VecZero(wBlk)
				curBlock = block
				return nil
			},
			OnMatch: func(s *storage.Tuple, r1Idx int, resIdx []int) error {
				g := gamma[idx*k : (idx+1)*k]
				for c := 0; c < k; c++ {
					nk[c] += g[c]
					linalg.Axpy(g[c], s.Features, sumMuParts[0][c])
					stats.Ops.AddAxpy(dS)
					wBlk[r1Idx*k+c] += g[c]
					for j, ri := range resIdx {
						wRes[j][ri*k+c] += g[c]
					}
				}
				idx++
				return nil
			},
			OnBlockEnd: func() error {
				for i, tp := range curBlock {
					for c := 0; c < k; c++ {
						linalg.Axpy(wBlk[i*k+c], tp.Features, sumMuParts[1][c])
						stats.Ops.AddAxpy(p.Dims[1])
					}
				}
				return nil
			},
		})
		if err != nil {
			return err
		}
		for j := 0; j < q-1; j++ {
			for t, tp := range ps.Resident(j) {
				for c := 0; c < k; c++ {
					linalg.Axpy(wRes[j][t*k+c], tp.Features, sumMuParts[2+j][c])
					stats.Ops.AddAxpy(p.Dims[2+j])
				}
			}
		}
		for c := 0; c < k; c++ {
			for i := range sumMuParts {
				copy(sumMuFull[c][p.Offs[i]:p.Offs[i]+p.Dims[i]], sumMuParts[i][c])
			}
		}
		collapsed := applyMeanUpdates(model, nk, sumMuFull, n)

		// ------------------------------------------------------------------
		// M-step pass 2: covariances (Eq. 14-18 / 23-24) with the new means.
		// Diagonal dimension blocks use the group trick
		//   Σ_n γ PD_R PD_Rᵀ = (Σ_{n∈group} γ) · PD_R PD_Rᵀ,
		// and the S-R cross blocks use
		//   Σ_n γ PD_S PD_Rᵀ = (Σ_{n∈group} γ PD_S) ⊗ PD_R.
		// Cross blocks between two dimension relations are accumulated per
		// joined tuple through the cached PDs (paper §V-C).
		// ------------------------------------------------------------------
		for c := 0; c < k; c++ {
			acc[c].Zero()
		}
		for j := 0; j < q-1; j++ {
			linalg.VecZero(wRes2[j])
			dRj := p.Dims[2+j]
			for t, tp := range ps.Resident(j) {
				for c := 0; c < k; c++ {
					linalg.VecSub(pdRes[j][t*k+c], tp.Features, p.Slice(model.Means[c], 2+j))
					stats.Ops.AddSub(dRj)
					linalg.VecZero(gvecRes[j][t*k+c])
				}
			}
		}

		idx = 0
		ps.Pass = "fgmm.mstep_cov"
		err = ps.Run(join.Callbacks{
			OnBlockStart: func(block []*storage.Tuple) error {
				need := len(block) * k
				if cap(pdBlk) < need {
					pdBlk = make([][]float64, need)
					gvecBlk = make([][]float64, need)
				}
				pdBlk = pdBlk[:need]
				gvecBlk = gvecBlk[:need]
				if cap(wBlk2) < need {
					wBlk2 = make([]float64, need)
				}
				wBlk2 = wBlk2[:need]
				linalg.VecZero(wBlk2)
				dR1 := p.Dims[1]
				for i, tp := range block {
					for c := 0; c < k; c++ {
						if pdBlk[i*k+c] == nil {
							pdBlk[i*k+c] = make([]float64, dR1)
							gvecBlk[i*k+c] = make([]float64, dS)
						}
						linalg.VecSub(pdBlk[i*k+c], tp.Features, p.Slice(model.Means[c], 1))
						stats.Ops.AddSub(dR1)
						linalg.VecZero(gvecBlk[i*k+c])
					}
				}
				curBlock = block
				return nil
			},
			OnMatch: func(s *storage.Tuple, r1Idx int, resIdx []int) error {
				g := gamma[idx*k : (idx+1)*k]
				for c := 0; c < k; c++ {
					linalg.VecSub(pds, s.Features, p.Slice(model.Means[c], 0))
					stats.Ops.AddSub(dS)
					linalg.OuterAccum(acc[c].B[0][0], g[c], pds, pds)
					stats.Ops.AddOuter(dS, dS)
					wBlk2[r1Idx*k+c] += g[c]
					linalg.Axpy(g[c], pds, gvecBlk[r1Idx*k+c])
					stats.Ops.AddAxpy(dS)
					pdBuf[0] = pdBlk[r1Idx*k+c]
					for j, ri := range resIdx {
						wRes2[j][ri*k+c] += g[c]
						linalg.Axpy(g[c], pds, gvecRes[j][ri*k+c])
						stats.Ops.AddAxpy(dS)
						pdBuf[1+j] = pdRes[j][ri*k+c]
					}
					// Cross blocks between dimension relations (multi-way).
					for a := 0; a < q; a++ {
						for b := a + 1; b < q; b++ {
							linalg.OuterAccum(acc[c].B[1+a][1+b], g[c], pdBuf[a], pdBuf[b])
							stats.Ops.AddOuter(p.Dims[1+a], p.Dims[1+b])
							linalg.OuterAccum(acc[c].B[1+b][1+a], g[c], pdBuf[b], pdBuf[a])
							stats.Ops.AddOuter(p.Dims[1+b], p.Dims[1+a])
						}
					}
				}
				idx++
				return nil
			},
			OnBlockEnd: func() error {
				dR1 := p.Dims[1]
				for i := range curBlock {
					for c := 0; c < k; c++ {
						pd := pdBlk[i*k+c]
						gv := gvecBlk[i*k+c]
						linalg.OuterAccum(acc[c].B[1][1], wBlk2[i*k+c], pd, pd)
						stats.Ops.AddOuter(dR1, dR1)
						linalg.OuterAccum(acc[c].B[0][1], 1, gv, pd)
						stats.Ops.AddOuter(dS, dR1)
						linalg.OuterAccum(acc[c].B[1][0], 1, pd, gv)
						stats.Ops.AddOuter(dR1, dS)
					}
				}
				return nil
			},
		})
		if err != nil {
			return err
		}
		for j := 0; j < q-1; j++ {
			dRj := p.Dims[2+j]
			for t := range ps.Resident(j) {
				for c := 0; c < k; c++ {
					pd := pdRes[j][t*k+c]
					gv := gvecRes[j][t*k+c]
					linalg.OuterAccum(acc[c].B[2+j][2+j], wRes2[j][t*k+c], pd, pd)
					stats.Ops.AddOuter(dRj, dRj)
					linalg.OuterAccum(acc[c].B[0][2+j], 1, gv, pd)
					stats.Ops.AddOuter(dS, dRj)
					linalg.OuterAccum(acc[c].B[2+j][0], 1, pd, gv)
					stats.Ops.AddOuter(dRj, dS)
				}
			}
		}
		for c := 0; c < k; c++ {
			acc[c].AssembleInto(sumCov[c])
		}
		applyCovUpdates(model, nk, sumCov, collapsed, cfg.RegEps)

		stats.LogLikelihood = append(stats.LogLikelihood, ll)
		stats.Iters = iter + 1
		if iter > 0 && converged(ll, prevLL, cfg.Tol) {
			stats.Converged = true
			break
		}
		prevLL = ll
	}
	return nil
}
