package gmm

import (
	"factorml/internal/core"
)

// This file holds the fused E-step kernel: one call scores a fact tuple
// against every mixture component with the per-component state flattened
// into contiguous slices (fact-part mean, flat B00 block, merged log
// constant) instead of three pointer hops per term through compState →
// BlockedSym → Dense. Structural overhead of the unfused path is removed
// (per-term function calls, the cptrs pointer-array fill, per-call
// dimension panics, per-element bounds checks via exact-length
// re-slicing, per-term op-counter bumps), and the matrix terms are
// blocked four rows at a time with independent accumulator chains to
// break the serial one-add-per-cycle dependency the scalar kernels are
// latency-bound on.
//
// The evaluation order is FIXED and deterministic — same inputs, same
// bits, on every worker count and every run — but the four-way summation
// order differs from the unfused reference by design, so fused and
// unfused agree to rounding (≤1e-12 relative, pinned by
// TestFusedKernelMatchesReference) rather than bit-for-bit. Every
// consumer of component log-densities (serving Scorer, the streaming
// incremental E-step, the factorized trainer) evaluates through this one
// kernel, so all same-code bit-identity guarantees (worker sweeps,
// incremental-vs-full refresh, crash replay) are preserved by
// construction; the cross-strategy harnesses tolerate rounding (1e-9).
// The op accounting is analytic and matches the unfused call sites
// exactly.

// pairBlock is one flattened cross block B[i+1][j+1] (i<j dimension parts)
// of a component's blocked inverse covariance.
type pairBlock struct {
	a  []float64 // flat di×dj block
	dj int
}

// hotComp is the flattened per-component scoring state.
type hotComp struct {
	muS   []float64 // fact-part mean µ_S (aliases Means[c][:dS])
	b00   []float64 // flat dS×dS fact block of the blocked inverse
	pairs []pairBlock
	logK  float64 // logW + logNorm
}

// hotState is the fused kernel over all K components of one precomputed
// model. Build it with buildHot after Model.precompute; it aliases the
// compState matrices (no copies) and is immutable after construction, so
// it is safe for concurrent scoreRow calls with private scratch.
type hotState struct {
	comps  []hotComp
	dS     int
	rowOps core.Ops // op charge of one full-row scoreRow call (all K)
}

// buildHot flattens precomputed component states into the fused kernel's
// layout. p is the relation partition the states were blocked over.
func buildHot(m *Model, p core.Partition, states []compState) *hotState {
	q := p.Parts() - 1
	dS := p.Dims[0]
	hs := &hotState{comps: make([]hotComp, m.K), dS: dS}
	for c := range hs.comps {
		hc := &hs.comps[c]
		hc.muS = p.Slice(m.Means[c], 0)
		hc.b00 = states[c].blocked.B[0][0].Data()
		hc.logK = states[c].logW + states[c].logNorm
		for i := 1; i <= q; i++ {
			for j := i + 1; j <= q; j++ {
				hc.pairs = append(hc.pairs, pairBlock{
					a:  states[c].blocked.B[i][j].Data(),
					dj: p.Dims[j],
				})
			}
		}
	}
	// The per-row op count is a pure function of the partition shape, so it
	// is charged in one Add per row instead of ~K·(4+3q) method calls. The
	// accounting below mirrors the unfused call sites term for term.
	var o core.Ops
	o.AddSub(dS)
	o.AddQuadForm(dS)
	for j := 1; j <= q; j++ {
		o.AddDot(dS)
		o.Adds += 3
		o.Mul++
	}
	for i := 1; i <= q; i++ {
		for j := i + 1; j <= q; j++ {
			o.AddBilinear(p.Dims[i], p.Dims[j])
			o.Adds++
			o.Mul++
		}
	}
	hs.rowOps = o.Scale(int64(m.K))
	return hs
}

// scoreRow fills logp with every component's factorized log-density term
// for one normalized fact tuple xs (length dS): caches[j] holds the K
// per-component caches of dimension part j+1, pds is dS scratch. The
// evaluation order is fixed (deterministic bits for identical inputs);
// see the file comment for how it relates to the unfused reference.
func (hs *hotState) scoreRow(xs []float64, caches [][]core.QuadCache, pds, logp []float64, ops *core.Ops) {
	dS := hs.dS
	xs = xs[:dS]
	pds = pds[:dS]
	logp = logp[:len(hs.comps)]
	for c := range hs.comps {
		hc := &hs.comps[c]
		mu := hc.muS[:dS]
		for i, v := range xs {
			pds[i] = v - mu[i]
		}
		// Fact-block quadratic form pdsᵀ·B00·pds, blocked four matrix rows
		// at a time: the four row-dots run as independent accumulator
		// chains over one streamed pds, so the multiplies pipeline instead
		// of serializing on a single add chain (the scalar kernels'
		// bottleneck). Loops are spelled out inline — the compiler refuses
		// to inline helpers with loops, and a call per row would give the
		// ILP win straight back.
		var q0, q1, q2, q3 float64
		b00 := hc.b00
		i := 0
		for ; i+4 <= dS; i += 4 {
			row0 := b00[i*dS : i*dS+dS]
			row1 := b00[(i+1)*dS : (i+1)*dS+dS]
			row2 := b00[(i+2)*dS : (i+2)*dS+dS]
			row3 := b00[(i+3)*dS : (i+3)*dS+dS]
			var s0, s1, s2, s3 float64
			for j, pj := range pds {
				s0 += row0[j] * pj
				s1 += row1[j] * pj
				s2 += row2[j] * pj
				s3 += row3[j] * pj
			}
			q0 += pds[i] * s0
			q1 += pds[i+1] * s1
			q2 += pds[i+2] * s2
			q3 += pds[i+3] * s3
		}
		for ; i < dS; i++ {
			row := b00[i*dS : i*dS+dS]
			var s float64
			for j, pj := range pds {
				s += row[j] * pj
			}
			q0 += pds[i] * s
		}
		q := (q0 + q1) + (q2 + q3)
		// Per-dimension-part cross + self terms through the caches.
		for j := range caches {
			cc := &caches[j][c]
			ra, rb := pds, cc.CrossS
			var r0, r1, r2, r3 float64
			for len(ra) >= 4 && len(rb) >= 4 {
				r0 += ra[0] * rb[0]
				r1 += ra[1] * rb[1]
				r2 += ra[2] * rb[2]
				r3 += ra[3] * rb[3]
				ra, rb = ra[4:], rb[4:]
			}
			for t, v := range ra {
				r0 += v * rb[t]
			}
			q += 2*((r0+r1)+(r2+r3)) + cc.Self
		}
		// Cross terms between two dimension parts (multi-way schemas).
		if len(hc.pairs) > 0 {
			np := 0
			for i := 0; i < len(caches); i++ {
				for j := i + 1; j < len(caches); j++ {
					pb := &hc.pairs[np]
					np++
					x := caches[i][c].PD
					y := caches[j][c].PD[:pb.dj]
					a := pb.a
					dj := pb.dj
					var b0, b1, b2, b3 float64
					ii := 0
					for ; ii+4 <= len(x); ii += 4 {
						row0 := a[ii*dj : ii*dj+dj]
						row1 := a[(ii+1)*dj : (ii+1)*dj+dj]
						row2 := a[(ii+2)*dj : (ii+2)*dj+dj]
						row3 := a[(ii+3)*dj : (ii+3)*dj+dj]
						var s0, s1, s2, s3 float64
						for jj, yj := range y {
							s0 += row0[jj] * yj
							s1 += row1[jj] * yj
							s2 += row2[jj] * yj
							s3 += row3[jj] * yj
						}
						b0 += x[ii] * s0
						b1 += x[ii+1] * s1
						b2 += x[ii+2] * s2
						b3 += x[ii+3] * s3
					}
					for ; ii < len(x); ii++ {
						row := a[ii*dj : ii*dj+dj]
						var s float64
						for jj, yj := range y {
							s += row[jj] * yj
						}
						b0 += x[ii] * s
					}
					q += 2 * ((b0 + b1) + (b2 + b3))
				}
			}
		}
		logp[c] = hc.logK - 0.5*q
	}
	ops.Add(hs.rowOps)
}
