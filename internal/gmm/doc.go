// Package gmm implements full-covariance Gaussian Mixture Model training by
// Expectation-Maximization over normalized relations, in the paper's three
// flavours:
//
//   - TrainM (M-GMM): materialize the join result T on disk, then run EM
//     reading T three times per iteration (Algorithm 1 of the paper).
//   - TrainS (S-GMM): identical EM, but each read of T is replaced by
//     re-executing the block-nested-loops join on the fly.
//   - TrainF (F-GMM): the paper's contribution — the E-step quadratic form
//     and the M-step mean/covariance accumulations are factorized into
//     per-relation blocks (Eq. 7–24), and every quantity that depends only
//     on a dimension tuple is computed once per distinct dimension tuple
//     and reused across all matching fact tuples.
//
// The decomposition is exact, so all three trainers produce identical
// parameters at every iteration (verified by tests to ~1e-9). Binary joins
// and multi-way star joins are both supported; the multi-way factorization
// follows §V-C (diagonal blocks and PD vectors of each dimension relation
// are reused; cross-dimension blocks are evaluated per joined tuple through
// the cached PDs).
//
// Numerical notes: responsibilities are computed in log space with
// log-sum-exp (this affects all three algorithms identically, so exactness
// of the comparison is preserved), covariances get a small diagonal
// regularizer each M-step, and a component whose responsibility mass
// collapses keeps its previous parameters.
package gmm
