package gmm

import (
	"math"

	"factorml/internal/join"
)

// NumParams returns the number of free parameters of the mixture: K−1
// mixing weights, K·D means, and K·D(D+1)/2 covariance entries (K·D for a
// diagonal model).
func (m *Model) NumParams(diagonal bool) int {
	cov := m.D * (m.D + 1) / 2
	if diagonal {
		cov = m.D
	}
	return (m.K - 1) + m.K*m.D + m.K*cov
}

// BIC is the Bayesian information criterion −2·LL + p·ln(n); lower is
// better. Use it to choose K across trained models.
func (m *Model) BIC(logLikelihood float64, n int64, diagonal bool) float64 {
	return -2*logLikelihood + float64(m.NumParams(diagonal))*math.Log(float64(n))
}

// AIC is the Akaike information criterion −2·LL + 2p; lower is better.
func (m *Model) AIC(logLikelihood float64, diagonal bool) float64 {
	return -2*logLikelihood + 2*float64(m.NumParams(diagonal))
}

// Score streams the join and returns the total log-likelihood of the data
// under the model together with the row count, without materializing.
func (m *Model) Score(spec *join.Spec) (ll float64, n int64, err error) {
	err = join.Stream(spec, func(_ int64, x []float64, _ float64) error {
		ll += m.LogProb(x)
		n++
		return nil
	})
	return ll, n, err
}
