package gmm

import (
	"errors"
	"fmt"
	"math"
	"time"

	"factorml/internal/core"
	"factorml/internal/linalg"
	"factorml/internal/plan"
	"factorml/internal/storage"
)

// Model is a K-component Gaussian mixture over d-dimensional data.
type Model struct {
	K       int
	D       int
	Weights []float64       // mixing coefficients π_k, sum to 1
	Means   [][]float64     // K × D
	Covs    []*linalg.Dense // K dense D×D covariance matrices
}

// Config controls EM training.
type Config struct {
	K       int     // number of components (required, ≥ 1)
	MaxIter int     // maximum EM iterations (default 25)
	Tol     float64 // relative log-likelihood change for convergence (default 1e-4)
	Seed    int64   // RNG seed for initialization (default 1)
	RegEps  float64 // diagonal regularizer added to each covariance (default 1e-6)

	// Diagonal restricts covariances to diagonal matrices — the IGMM model
	// of Cheng & Koudas (ICDE 2019) that this paper generalizes. The
	// factorized trainer then caches a single scalar per dimension tuple
	// and component (no cross-relation covariance blocks exist).
	Diagonal bool

	// BlockPages is forwarded to the join spec (0 = join.DefaultBlockPages).
	BlockPages int

	// Init, when non-nil, warm-starts training from this model instead of
	// the seeded reservoir initialization: the trainer clones it and runs
	// EM from there. Init.K must equal K and Init.D must match the joined
	// feature width. Seed is then unused. A single warm-started iteration
	// is the EM step the streaming subsystem's incremental GMM refresh is
	// equivalent to (internal/stream pins the two against each other);
	// it is also how a served model is retrained in place on base+delta.
	Init *Model

	// NumWorkers sets the size of the worker pool that parallelizes the
	// training passes: 0 uses every CPU (runtime.NumCPU()), 1 runs
	// sequentially on the calling goroutine, n > 1 uses n workers. (The
	// factorml facade first resolves 0 to its database-wide
	// Options.NumWorkers default, which itself defaults to every CPU.) The
	// chunk geometry and reduction order are independent of this knob
	// (see internal/parallel), so the trained model is bit-for-bit
	// identical for every value — parallelism never trades away the
	// paper's exactness guarantee.
	NumWorkers int
}

// DefaultMaxIter is the EM iteration cap when Config.MaxIter is zero —
// exported so the strategy planner prices the same number of passes the
// trainer would run.
const DefaultMaxIter = 25

func (c Config) withDefaults() Config {
	if c.MaxIter == 0 {
		c.MaxIter = DefaultMaxIter
	}
	if c.Tol == 0 {
		c.Tol = 1e-4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RegEps == 0 {
		c.RegEps = 1e-6
	}
	return c
}

func (c Config) validate() error {
	if c.K < 1 {
		return fmt.Errorf("gmm: config K = %d, want ≥ 1", c.K)
	}
	if c.MaxIter < 0 || c.Tol < 0 || c.RegEps < 0 {
		return errors.New("gmm: negative MaxIter/Tol/RegEps")
	}
	return nil
}

// Stats reports how training went.
type Stats struct {
	Iters         int
	Converged     bool
	LogLikelihood []float64 // per completed iteration
	Ops           core.Ops  // training-math flop counters
	IO            storage.IOStats
	TrainTime     time.Duration

	// Plan, when training was strategy-planned (factorml.Auto), records
	// the planner's decision: the chosen strategy plus the per-strategy
	// cost estimates it ranked. Nil when the caller picked the strategy.
	Plan *plan.Plan
}

// Result bundles the trained model with its statistics.
type Result struct {
	Model *Model
	Stats Stats
}

// FinalLL returns the last recorded log-likelihood, or -Inf when training
// recorded none.
func (s *Stats) FinalLL() float64 {
	if len(s.LogLikelihood) == 0 {
		return math.Inf(-1)
	}
	return s.LogLikelihood[len(s.LogLikelihood)-1]
}

// compState holds the per-component quantities precomputed once per EM
// iteration: the inverse covariance (paper's I_k), its partition blocks, and
// the constant part of the log density.
type compState struct {
	inv     *linalg.Dense
	blocked *core.BlockedSym
	logNorm float64 // -0.5·(d·ln 2π + ln|Σ|)
	logW    float64 // ln π_k
}

// precompute factorizes every component covariance. It returns an error when
// a covariance is not positive definite (which regularization should
// prevent).
func (m *Model) precompute(p core.Partition, blockInv bool) ([]compState, error) {
	states := make([]compState, m.K)
	for k := 0; k < m.K; k++ {
		inv, logDet, err := linalg.SPDInverse(m.Covs[k])
		if err != nil {
			return nil, fmt.Errorf("gmm: component %d covariance: %w", k, err)
		}
		states[k] = compState{
			inv:     inv,
			logNorm: -0.5 * (float64(m.D)*math.Log(2*math.Pi) + logDet),
			logW:    math.Log(math.Max(m.Weights[k], 1e-300)),
		}
		if blockInv {
			states[k].blocked = core.BlockSym(inv, p)
		}
	}
	return states, nil
}

// LogProb returns ln p(x) under the mixture.
func (m *Model) LogProb(x []float64) float64 {
	if len(x) != m.D {
		panic(fmt.Sprintf("gmm: point has dim %d, model has %d", len(x), m.D))
	}
	states, err := m.precompute(core.NewPartition([]int{m.D}), false)
	if err != nil {
		return math.Inf(-1)
	}
	lp := make([]float64, m.K)
	pd := make([]float64, m.D)
	for k := range lp {
		linalg.VecSub(pd, x, m.Means[k])
		lp[k] = states[k].logW + states[k].logNorm - 0.5*linalg.QuadForm(states[k].inv, pd)
	}
	return linalg.LogSumExp(lp)
}

// Responsibilities returns γ_k(x) = p(z = k | x) for a single point.
func (m *Model) Responsibilities(x []float64) []float64 {
	states, err := m.precompute(core.NewPartition([]int{m.D}), false)
	if err != nil {
		out := make([]float64, m.K)
		for i := range out {
			out[i] = 1 / float64(m.K)
		}
		return out
	}
	lp := make([]float64, m.K)
	pd := make([]float64, m.D)
	for k := range lp {
		linalg.VecSub(pd, x, m.Means[k])
		lp[k] = states[k].logW + states[k].logNorm - 0.5*linalg.QuadForm(states[k].inv, pd)
	}
	lse := linalg.LogSumExp(lp)
	out := make([]float64, m.K)
	for k := range out {
		out[k] = math.Exp(lp[k] - lse)
	}
	return out
}

// Predict returns the index of the most responsible component for x.
func (m *Model) Predict(x []float64) int {
	r := m.Responsibilities(x)
	best := 0
	for k, v := range r {
		if v > r[best] {
			best = k
		}
	}
	return best
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	out := &Model{K: m.K, D: m.D, Weights: append([]float64{}, m.Weights...)}
	for k := 0; k < m.K; k++ {
		out.Means = append(out.Means, append([]float64{}, m.Means[k]...))
		out.Covs = append(out.Covs, m.Covs[k].Clone())
	}
	return out
}

// MaxParamDiff returns the largest absolute difference between any parameter
// of m and o (used by the exactness tests).
func (m *Model) MaxParamDiff(o *Model) float64 {
	if m.K != o.K || m.D != o.D {
		return math.Inf(1)
	}
	max := linalg.MaxAbsDiffVec(m.Weights, o.Weights)
	for k := 0; k < m.K; k++ {
		if d := linalg.MaxAbsDiffVec(m.Means[k], o.Means[k]); d > max {
			max = d
		}
		if d := m.Covs[k].MaxAbsDiff(o.Covs[k]); d > max {
			max = d
		}
	}
	return max
}
