package gmm

import (
	"math"
	"testing"
)

func TestDiagonalExactnessBinary(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 500, 30, 3, 4)
	cfg := Config{K: 3, MaxIter: 5, Tol: 1e-12, Diagonal: true}

	m, err := TrainM(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := TrainS(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Model.MaxParamDiff(s.Model); d > 1e-9 {
		t.Fatalf("M vs S diag param diff %v", d)
	}
	if d := s.Model.MaxParamDiff(f.Model); d > 1e-7 {
		t.Fatalf("S vs F diag param diff %v", d)
	}
}

func TestDiagonalExactnessMultiway(t *testing.T) {
	db := openDB(t)
	spec := synthMulti(t, db, 400, []int{25, 10}, 2, []int{3, 2})
	cfg := Config{K: 2, MaxIter: 4, Tol: 1e-12, Diagonal: true}
	s, err := TrainS(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Model.MaxParamDiff(f.Model); d > 1e-7 {
		t.Fatalf("S vs F diag param diff %v (multiway)", d)
	}
}

func TestDiagonalCovariancesAreDiagonal(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 300, 15, 2, 3)
	res, err := TrainF(db, spec, Config{K: 2, MaxIter: 4, Tol: 1e-12, Diagonal: true})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < res.Model.K; k++ {
		cov := res.Model.Covs[k]
		for i := 0; i < res.Model.D; i++ {
			for j := 0; j < res.Model.D; j++ {
				if i == j {
					if cov.At(i, i) <= 0 {
						t.Fatalf("component %d variance %d non-positive", k, i)
					}
				} else if cov.At(i, j) != 0 {
					t.Fatalf("component %d has off-diagonal entry (%d,%d)=%v", k, i, j, cov.At(i, j))
				}
			}
		}
	}
}

func TestDiagonalCheaperThanFull(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 600, 20, 3, 8)
	full, err := TrainF(db, spec, Config{K: 2, MaxIter: 3, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	diag, err := TrainF(db, spec, Config{K: 2, MaxIter: 3, Tol: 1e-12, Diagonal: true})
	if err != nil {
		t.Fatal(err)
	}
	if diag.Stats.Ops.Mul >= full.Stats.Ops.Mul {
		t.Fatalf("diagonal mults %d not below full-covariance %d", diag.Stats.Ops.Mul, full.Stats.Ops.Mul)
	}
}

func TestDiagonalLLNonDecreasing(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 400, 20, 2, 2)
	res, err := TrainF(db, spec, Config{K: 3, MaxIter: 8, Tol: 1e-12, Diagonal: true})
	if err != nil {
		t.Fatal(err)
	}
	lls := res.Stats.LogLikelihood
	for i := 1; i < len(lls); i++ {
		if lls[i] < lls[i-1]-1e-6*math.Abs(lls[i-1]) {
			t.Fatalf("diag EM log-likelihood decreased at iter %d: %v -> %v", i, lls[i-1], lls[i])
		}
	}
}

// F-IGMM must save ops vs S-IGMM, like the full-covariance case.
func TestDiagonalFactorizedSavesOps(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 1000, 10, 3, 8)
	cfg := Config{K: 2, MaxIter: 2, Tol: 1e-12, Diagonal: true}
	s, err := TrainS(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats.Ops.Mul >= s.Stats.Ops.Mul {
		t.Fatalf("F-IGMM mults %d not below S-IGMM %d", f.Stats.Ops.Mul, s.Stats.Ops.Mul)
	}
}
