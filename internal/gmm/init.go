package gmm

import (
	"fmt"
	"math/rand"

	"factorml/internal/linalg"
)

// warmStart validates cfg.Init against the dataset, counts the training
// points with one (cheap, feature-free) pass — the count is needed for the
// M-step weight denominators — and clones the model so the caller's copy
// is never mutated by training. Every algorithm streams the same join, so
// the warm-started trainers remain exactly comparable.
func warmStart(pass passFn, d int, cfg Config) (*Model, int, error) {
	if cfg.Init.D != d {
		return nil, 0, fmt.Errorf("gmm: warm-start model has dimension %d, dataset joins to %d", cfg.Init.D, d)
	}
	if cfg.Init.K != cfg.K {
		return nil, 0, fmt.Errorf("gmm: warm-start model has K=%d, config asks K=%d", cfg.Init.K, cfg.K)
	}
	n := 0
	err := pass(func(x []float64) error {
		if len(x) != d {
			return fmt.Errorf("gmm: stream vector dim %d, want %d", len(x), d)
		}
		n++
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if n == 0 {
		return nil, 0, fmt.Errorf("gmm: warm start over an empty dataset")
	}
	return cfg.Init.Clone(), n, nil
}

// passFn streams every joined training vector in a deterministic order —
// the Scan shape of a factor.Source (targets ignored: a mixture is
// unsupervised). All three algorithms expose their data through this
// shape; only the factorized trainer bypasses it for the EM passes
// themselves.
type passFn func(fn func(x []float64) error) error

// initModel performs one pass over the data to (a) count N, (b) accumulate
// the global per-feature mean and variance, and (c) reservoir-sample K
// points as initial means. The reservoir uses a seeded RNG over the
// deterministic stream order, so every algorithm arrives at the identical
// initial model — a precondition for the exactness comparisons.
func initModel(pass passFn, d int, cfg Config) (*Model, int, error) {
	if cfg.Init != nil {
		return warmStart(pass, d, cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	reservoir := make([][]float64, 0, cfg.K)
	sum := make([]float64, d)
	sumSq := make([]float64, d)
	n := 0
	err := pass(func(x []float64) error {
		if len(x) != d {
			return fmt.Errorf("gmm: stream vector dim %d, want %d", len(x), d)
		}
		if n < cfg.K {
			reservoir = append(reservoir, append([]float64{}, x...))
		} else if j := rng.Int63n(int64(n + 1)); j < int64(cfg.K) {
			copy(reservoir[j], x)
		}
		for i, v := range x {
			sum[i] += v
			sumSq[i] += v * v
		}
		n++
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if n < cfg.K {
		return nil, 0, fmt.Errorf("gmm: %d training points for K=%d components", n, cfg.K)
	}
	variance := make([]float64, d)
	for i := range variance {
		mean := sum[i] / float64(n)
		variance[i] = sumSq[i]/float64(n) - mean*mean
		if variance[i] < cfg.RegEps {
			variance[i] = cfg.RegEps
		}
	}
	m := &Model{K: cfg.K, D: d, Weights: make([]float64, cfg.K)}
	for k := 0; k < cfg.K; k++ {
		m.Weights[k] = 1 / float64(cfg.K)
		m.Means = append(m.Means, reservoir[k])
		cov := linalg.Diag(variance)
		cov.AddDiag(cfg.RegEps)
		m.Covs = append(m.Covs, cov)
	}
	return m, n, nil
}
