package gmm

import (
	"math"

	"factorml/internal/core"
	"factorml/internal/linalg"
)

// EStepBenchHooks exposes the fused and pre-fusion E-step kernels side by
// side for the root BenchmarkKernels suite: each returned function scores
// one normalized fact tuple, fills gamma with the responsibilities, and
// returns ln p(x). Production paths always evaluate through Score /
// Responsibilities (the fused kernel); the unfused closure keeps the
// original per-term loop alive purely as the measured baseline.
func (s *Scorer) EStepBenchHooks() (fused, unfused func(xs []float64, caches [][]core.QuadCache, sc *ScoreScratch, gamma []float64) float64) {
	finish := func(sc *ScoreScratch, gamma []float64) float64 {
		lse := linalg.LogSumExp(sc.logp)
		for c := range gamma {
			gamma[c] = math.Exp(sc.logp[c] - lse)
		}
		return lse
	}
	fused = func(xs []float64, caches [][]core.QuadCache, sc *ScoreScratch, gamma []float64) float64 {
		s.scoreComponents(xs, caches, sc)
		return finish(sc, gamma)
	}
	unfused = func(xs []float64, caches [][]core.QuadCache, sc *ScoreScratch, gamma []float64) float64 {
		s.scoreComponentsUnfused(xs, caches, sc)
		return finish(sc, gamma)
	}
	return fused, unfused
}
