package gmm

import (
	"fmt"

	"factorml/internal/core"
	"factorml/internal/linalg"
)

// Scorer evaluates a trained mixture over normalized fact tuples with the
// same factorization the F-GMM E-step uses (Eq. 7-12/19-21): the
// per-component inverse covariances are factorized once at construction,
// and the per-dimension-tuple quadratic-form contributions (core.QuadCache)
// are computed by FillDimCaches — once per distinct dimension tuple — and
// reused by Score for every matching fact tuple. All methods except
// construction are safe for concurrent use; the serving engine shares one
// Scorer across its worker pool.
type Scorer struct {
	m      *Model
	p      core.Partition
	states []compState
}

// NewScorer precomputes the blocked inverse covariances for scoring over
// the relation partition p (p's total width must equal the model dimension;
// part 0 is the fact relation).
func (m *Model) NewScorer(p core.Partition) (*Scorer, error) {
	if p.D != m.D {
		return nil, fmt.Errorf("gmm: partition width %d does not match model dimension %d", p.D, m.D)
	}
	states, err := m.precompute(p, true)
	if err != nil {
		return nil, err
	}
	return &Scorer{m: m, p: p, states: states}, nil
}

// K returns the number of mixture components (the length FillDimCaches
// expects for its destination slice).
func (s *Scorer) K() int { return s.m.K }

// Partition returns the relation partition the scorer was built over.
func (s *Scorer) Partition() core.Partition { return s.p }

// FillDimCaches computes the K per-component quadratic-form caches of
// dimension part i (i ≥ 1) for a dimension tuple with features xr.
// dst must have length K. The result is a pure function of (model, part,
// xr) — cache it per dimension tuple and share it across fact tuples.
func (s *Scorer) FillDimCaches(dst []core.QuadCache, part int, xr []float64, ops *core.Ops) {
	if len(dst) != s.m.K {
		panic(fmt.Sprintf("gmm: dim-cache slice length %d, want K=%d", len(dst), s.m.K))
	}
	for c := range dst {
		core.FillQuadCache(&dst[c], s.states[c].blocked, part, xr, s.m.Means[c], ops)
	}
}

// ScoreScratch carries the per-goroutine buffers of Score.
type ScoreScratch struct {
	pds   []float64
	logp  []float64
	cptrs []*core.QuadCache
	// Ops accumulates the floating-point op counts of every Score call made
	// with this scratch.
	Ops core.Ops
}

// NewScratch allocates scratch sized for this scorer.
func (s *Scorer) NewScratch() *ScoreScratch {
	return &ScoreScratch{
		pds:   make([]float64, s.p.Dims[0]),
		logp:  make([]float64, s.m.K),
		cptrs: make([]*core.QuadCache, s.p.Parts()-1),
	}
}

// Score computes ln p(x) and the most responsible component for one
// normalized fact tuple: xs is the fact feature sub-vector (part 0),
// caches[j] holds the K per-component caches of dimension part j+1 (from
// FillDimCaches). The floating-point evaluation order is fixed, so the
// result is bit-identical regardless of worker count or cache state, and
// exact versus Model.LogProb/Model.Predict over the assembled joined
// vector up to summation order.
func (s *Scorer) Score(xs []float64, caches [][]core.QuadCache, sc *ScoreScratch) (logProb float64, cluster int) {
	if len(caches) != s.p.Parts()-1 {
		panic(fmt.Sprintf("gmm: %d dimension caches, partition has %d dimension parts", len(caches), s.p.Parts()-1))
	}
	for c := 0; c < s.m.K; c++ {
		linalg.VecSub(sc.pds, xs, s.p.Slice(s.m.Means[c], 0))
		sc.Ops.AddSub(len(sc.pds))
		for j := range caches {
			sc.cptrs[j] = &caches[j][c]
		}
		qv := core.FactQuad(s.states[c].blocked, sc.pds, sc.cptrs, &sc.Ops)
		sc.logp[c] = s.states[c].logW + s.states[c].logNorm - 0.5*qv
	}
	best := 0
	for c, v := range sc.logp {
		if v > sc.logp[best] {
			best = c
		}
	}
	return linalg.LogSumExp(sc.logp), best
}
