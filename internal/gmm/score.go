package gmm

import (
	"fmt"
	"math"

	"factorml/internal/core"
	"factorml/internal/linalg"
)

// Scorer evaluates a trained mixture over normalized fact tuples with the
// same factorization the F-GMM E-step uses (Eq. 7-12/19-21): the
// per-component inverse covariances are factorized once at construction,
// and the per-dimension-tuple quadratic-form contributions (core.QuadCache)
// are computed by FillDimCaches — once per distinct dimension tuple — and
// reused by Score for every matching fact tuple. All methods except
// construction are safe for concurrent use; the serving engine shares one
// Scorer across its worker pool.
type Scorer struct {
	m      *Model
	p      core.Partition
	states []compState
	hot    *hotState
	// hot32, when non-nil, routes scoring through the float32-storage
	// kernel (NewScorerF32) instead of the float64 one.
	hot32 *hotState32
}

// NewScorer precomputes the blocked inverse covariances for scoring over
// the relation partition p (p's total width must equal the model dimension;
// part 0 is the fact relation).
func (m *Model) NewScorer(p core.Partition) (*Scorer, error) {
	if p.D != m.D {
		return nil, fmt.Errorf("gmm: partition width %d does not match model dimension %d", p.D, m.D)
	}
	states, err := m.precompute(p, true)
	if err != nil {
		return nil, err
	}
	return &Scorer{m: m, p: p, states: states, hot: buildHot(m, p, states)}, nil
}

// NewScorerF32 is NewScorer with float32 storage for the per-component
// matrices and float64 accumulation — the opt-in bandwidth-saving path of
// the raw-speed pass. Log-densities differ from NewScorer's by the float32
// rounding of the matrices (≤1e-5 relative for well-conditioned models,
// pinned by TestFloat32ScorerAccuracy); the evaluation stays fixed-order
// deterministic. Use only where the bit-identical float64 guarantees are
// not required.
func (m *Model) NewScorerF32(p core.Partition) (*Scorer, error) {
	s, err := m.NewScorer(p)
	if err != nil {
		return nil, err
	}
	s.hot32 = buildHot32(s.hot)
	return s, nil
}

// K returns the number of mixture components (the length FillDimCaches
// expects for its destination slice).
func (s *Scorer) K() int { return s.m.K }

// Partition returns the relation partition the scorer was built over.
func (s *Scorer) Partition() core.Partition { return s.p }

// FillDimCaches computes the K per-component quadratic-form caches of
// dimension part i (i ≥ 1) for a dimension tuple with features xr.
// dst must have length K. The result is a pure function of (model, part,
// xr) — cache it per dimension tuple and share it across fact tuples.
func (s *Scorer) FillDimCaches(dst []core.QuadCache, part int, xr []float64, ops *core.Ops) {
	if len(dst) != s.m.K {
		panic(fmt.Sprintf("gmm: dim-cache slice length %d, want K=%d", len(dst), s.m.K))
	}
	for c := range dst {
		core.FillQuadCache(&dst[c], s.states[c].blocked, part, xr, s.m.Means[c], ops)
	}
}

// ScoreScratch carries the per-goroutine buffers of Score.
type ScoreScratch struct {
	pds   []float64
	logp  []float64
	cptrs []*core.QuadCache
	// Ops accumulates the floating-point op counts of every Score call made
	// with this scratch.
	Ops core.Ops
}

// NewScratch allocates scratch sized for this scorer.
func (s *Scorer) NewScratch() *ScoreScratch {
	return &ScoreScratch{
		pds:   make([]float64, s.p.Dims[0]),
		logp:  make([]float64, s.m.K),
		cptrs: make([]*core.QuadCache, s.p.Parts()-1),
	}
}

// scoreComponents fills sc.logp with every component's factorized
// log-density term for one normalized fact tuple. Score and
// Responsibilities both evaluate through this single loop, so the serving
// path and the incremental-maintenance E-step stay arithmetically
// identical by construction — the bit-identity their tests pin. Since the
// raw-speed pass it dispatches to the fused kernel (see fused.go): a
// fixed, deterministic evaluation whose blocked multi-accumulator sums
// differ from the original per-term loop only in summation order (≤1e-12
// relative, pinned by TestFusedKernelMatchesReference);
// scoreComponentsUnfused keeps the original loop as the benchmark
// baseline and reference.
func (s *Scorer) scoreComponents(xs []float64, caches [][]core.QuadCache, sc *ScoreScratch) {
	if len(caches) != s.p.Parts()-1 {
		panic(fmt.Sprintf("gmm: %d dimension caches, partition has %d dimension parts", len(caches), s.p.Parts()-1))
	}
	if s.hot32 != nil {
		s.hot32.scoreRow(xs, caches, sc.pds, sc.logp, &sc.Ops)
		return
	}
	s.hot.scoreRow(xs, caches, sc.pds, sc.logp, &sc.Ops)
}

// scoreComponentsUnfused is the pre-fusion reference kernel: one call per
// term through compState/FactQuad. TestFusedKernelBitIdentity pins
// scoreComponents against it, and BenchmarkKernels reports the fused
// speedup over it.
func (s *Scorer) scoreComponentsUnfused(xs []float64, caches [][]core.QuadCache, sc *ScoreScratch) {
	if len(caches) != s.p.Parts()-1 {
		panic(fmt.Sprintf("gmm: %d dimension caches, partition has %d dimension parts", len(caches), s.p.Parts()-1))
	}
	for c := 0; c < s.m.K; c++ {
		linalg.VecSub(sc.pds, xs, s.p.Slice(s.m.Means[c], 0))
		sc.Ops.AddSub(len(sc.pds))
		for j := range caches {
			sc.cptrs[j] = &caches[j][c]
		}
		qv := core.FactQuad(s.states[c].blocked, sc.pds, sc.cptrs, &sc.Ops)
		sc.logp[c] = s.states[c].logW + s.states[c].logNorm - 0.5*qv
	}
}

// Score computes ln p(x) and the most responsible component for one
// normalized fact tuple: xs is the fact feature sub-vector (part 0),
// caches[j] holds the K per-component caches of dimension part j+1 (from
// FillDimCaches). The floating-point evaluation order is fixed, so the
// result is bit-identical regardless of worker count or cache state, and
// exact versus Model.LogProb/Model.Predict over the assembled joined
// vector up to summation order.
func (s *Scorer) Score(xs []float64, caches [][]core.QuadCache, sc *ScoreScratch) (logProb float64, cluster int) {
	s.scoreComponents(xs, caches, sc)
	best := 0
	for c, v := range sc.logp {
		if v > sc.logp[best] {
			best = c
		}
	}
	return linalg.LogSumExp(sc.logp), best
}

// Responsibilities computes γ_k(x) for one normalized fact tuple through
// the same factorized evaluation as Score, filling gamma (length K) and
// returning ln p(x) — the tuple's log-likelihood contribution. This is the
// E-step kernel of the incremental-maintenance path (internal/stream): the
// floating-point order is fixed, so absorbing the same rows yields the
// same bits no matter how the work is batched or parallelized.
func (s *Scorer) Responsibilities(xs []float64, caches [][]core.QuadCache, sc *ScoreScratch, gamma []float64) float64 {
	if len(gamma) != s.m.K {
		panic(fmt.Sprintf("gmm: gamma length %d, want K=%d", len(gamma), s.m.K))
	}
	s.scoreComponents(xs, caches, sc)
	lse := linalg.LogSumExp(sc.logp)
	for c := range gamma {
		gamma[c] = math.Exp(sc.logp[c] - lse)
	}
	return lse
}
