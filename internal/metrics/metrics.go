// Package metrics is a dependency-free Prometheus client: counters and
// latency histograms updated with atomics on the hot path (no locks once
// a labeled child exists), plus scrape-time collectors that adapt the
// server's existing /statsz snapshots into gauges, rendered in the
// Prometheus text exposition format (version 0.0.4) by Handler.
//
// The hot-path discipline mirrors the rest of the serving layer: a
// request touches only atomic adds on pre-resolved children; the
// registry mutex is taken at registration, first-use child creation and
// scrape time only.
package metrics

import (
	"fmt"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefLatencyBuckets are the default request-latency histogram bounds in
// seconds (upper bounds; +Inf is implicit).
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram is a fixed-bucket distribution. Observe is lock-free.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value (for latency histograms: seconds).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

const (
	typeCounter   = "counter"
	typeHistogram = "histogram"
	typeGauge     = "gauge"
)

// family is one registered metric family and its labeled children.
type family struct {
	name, help, typ string
	labels          []string
	bounds          []float64 // histogram families only

	children sync.Map // joined label values -> *child
	mu       sync.Mutex
}

type child struct {
	values []string
	ctr    *Counter
	hist   *Histogram
}

func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s takes %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x1f")
	if c, ok := f.children.Load(key); ok {
		return c.(*child)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children.Load(key); ok {
		return c.(*child)
	}
	c := &child{values: append([]string{}, values...)}
	switch f.typ {
	case typeCounter:
		c.ctr = &Counter{}
	case typeHistogram:
		c.hist = newHistogram(f.bounds)
	}
	f.children.Store(key, c)
	return c
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (in the label
// order the vec was registered with), creating it on first use. Callers
// on hot paths should resolve children once and reuse them, but a
// repeated With on an existing child costs one lock-free map load.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).ctr }

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).hist }

// Sample is one scrape-time value emitted by a Collector.
type Sample struct {
	Name   string
	Help   string
	Type   string // typeGauge or typeCounter; empty means gauge
	Labels [][2]string
	Value  float64
}

// Collector contributes samples at scrape time — the adapter layer over
// snapshot-style sources (engine stats, stream counters, planner
// decisions) that already maintain their own synchronization, so the
// serving hot path gains no new locks.
type Collector func(emit func(Sample))

// Registry holds metric families and collectors and renders them.
type Registry struct {
	mu         sync.Mutex
	families   []*family
	byName     map[string]bool
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byName: make(map[string]bool)} }

func (r *Registry) register(name, help, typ string, bounds []float64, labels []string) *family {
	if !nameRE.MatchString(name) {
		panic("metrics: invalid metric name " + name)
	}
	for _, l := range labels {
		if !labelRE.MatchString(l) {
			panic("metrics: invalid label name " + l)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[name] {
		panic("metrics: duplicate metric name " + name)
	}
	r.byName[name] = true
	f := &family{name: name, help: help, typ: typ, bounds: bounds, labels: labels}
	r.families = append(r.families, f)
	return f
}

// CounterVec registers a counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, typeCounter, nil, labels)}
}

// HistogramVec registers a histogram family with the given upper bounds
// (nil selects DefLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	bs := append([]float64{}, bounds...)
	sort.Float64s(bs)
	return &HistogramVec{r.register(name, help, typeHistogram, bs, labels)}
}

// Collect registers a scrape-time collector. Collector sample names must
// not collide with registered families or other collectors' names with a
// different HELP/TYPE.
func (r *Registry) Collect(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func labelString(pairs [][2]string) string {
	if len(pairs) == 0 {
		return ""
	}
	parts := make([]string, len(pairs))
	for i, p := range pairs {
		parts[i] = p[0] + `="` + escapeLabel(p[1]) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Render writes the full exposition. Families render in registration
// order with children sorted by label values; collector samples render
// after, grouped by name in first-seen order.
func (r *Registry) Render(sb *strings.Builder) {
	r.mu.Lock()
	families := append([]*family{}, r.families...)
	collectors := append([]Collector{}, r.collectors...)
	r.mu.Unlock()

	for _, f := range families {
		var kids []*child
		f.children.Range(func(_, v any) bool {
			kids = append(kids, v.(*child))
			return true
		})
		if len(kids) == 0 {
			continue
		}
		sort.Slice(kids, func(i, j int) bool {
			return strings.Join(kids[i].values, "\x1f") < strings.Join(kids[j].values, "\x1f")
		})
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ)
		for _, c := range kids {
			pairs := make([][2]string, len(f.labels))
			for i, l := range f.labels {
				pairs[i] = [2]string{l, c.values[i]}
			}
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(sb, "%s%s %d\n", f.name, labelString(pairs), c.ctr.Value())
			case typeHistogram:
				var cum uint64
				for i, b := range c.hist.bounds {
					cum += c.hist.counts[i].Load()
					bp := append(append([][2]string{}, pairs...), [2]string{"le", formatValue(b)})
					fmt.Fprintf(sb, "%s_bucket%s %d\n", f.name, labelString(bp), cum)
				}
				cum += c.hist.counts[len(c.hist.bounds)].Load()
				bp := append(append([][2]string{}, pairs...), [2]string{"le", "+Inf"})
				fmt.Fprintf(sb, "%s_bucket%s %d\n", f.name, labelString(bp), cum)
				fmt.Fprintf(sb, "%s_sum%s %s\n", f.name, labelString(pairs),
					formatValue(math.Float64frombits(c.hist.sum.Load())))
				fmt.Fprintf(sb, "%s_count%s %d\n", f.name, labelString(pairs), cum)
			}
		}
	}

	// Collector samples, grouped so each family gets exactly one
	// HELP/TYPE header.
	var order []string
	grouped := make(map[string][]Sample)
	for _, c := range collectors {
		c(func(s Sample) {
			if s.Type == "" {
				s.Type = typeGauge
			}
			if _, ok := grouped[s.Name]; !ok {
				order = append(order, s.Name)
			}
			grouped[s.Name] = append(grouped[s.Name], s)
		})
	}
	for _, name := range order {
		ss := grouped[name]
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(ss[0].Help), name, ss[0].Type)
		for _, s := range ss {
			fmt.Fprintf(sb, "%s%s %s\n", name, labelString(s.Labels), formatValue(s.Value))
		}
	}
}

// Handler serves the exposition at GET; the content type is the
// Prometheus text format version 0.0.4.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var sb strings.Builder
		r.Render(&sb)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(sb.String()))
	})
}
