package metrics

import (
	"bufio"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var sb strings.Builder
	r.Render(&sb)
	return sb.String()
}

func TestCounterVecRender(t *testing.T) {
	r := NewRegistry()
	reqs := r.CounterVec("http_requests_total", "Requests served.", "endpoint", "status")
	reqs.With("predict", "200").Add(3)
	reqs.With("predict", "429").Inc()
	reqs.With("ingest", "200").Inc()

	got := render(r)
	want := `# HELP http_requests_total Requests served.
# TYPE http_requests_total counter
http_requests_total{endpoint="ingest",status="200"} 1
http_requests_total{endpoint="predict",status="200"} 3
http_requests_total{endpoint="predict",status="429"} 1
`
	if got != want {
		t.Fatalf("render:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramRender(t *testing.T) {
	r := NewRegistry()
	lat := r.HistogramVec("req_seconds", "Latency.", []float64{0.1, 1, 10}, "endpoint")
	h := lat.With("predict")
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 20} {
		h.Observe(v)
	}
	// An observation exactly on a bound lands in that bound's bucket
	// (le is an upper inclusive bound), so le="0.1" holds 0.05 and 0.1.
	got := render(r)
	want := `# HELP req_seconds Latency.
# TYPE req_seconds histogram
req_seconds_bucket{endpoint="predict",le="0.1"} 2
req_seconds_bucket{endpoint="predict",le="1"} 3
req_seconds_bucket{endpoint="predict",le="10"} 4
req_seconds_bucket{endpoint="predict",le="+Inf"} 5
req_seconds_sum{endpoint="predict"} 22.65
req_seconds_count{endpoint="predict"} 5
`
	if got != want {
		t.Fatalf("render:\n%s\nwant:\n%s", got, want)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
}

func TestCollectorRenderAndEscaping(t *testing.T) {
	r := NewRegistry()
	r.Collect(func(emit func(Sample)) {
		emit(Sample{Name: "cache_hit_rate", Help: "Fraction of\nhits.", Value: 0.75})
		emit(Sample{
			Name: "planner_strategy", Help: "Decision.", Type: "gauge",
			Labels: [][2]string{{"model", `we"ird\name`}}, Value: 1,
		})
		emit(Sample{Name: "planner_strategy", Labels: [][2]string{{"model", "b"}}, Value: 1})
	})
	got := render(r)
	want := `# HELP cache_hit_rate Fraction of\nhits.
# TYPE cache_hit_rate gauge
cache_hit_rate 0.75
# HELP planner_strategy Decision.
# TYPE planner_strategy gauge
planner_strategy{model="we\"ird\\name"} 1
planner_strategy{model="b"} 1
`
	if got != want {
		t.Fatalf("render:\n%s\nwant:\n%s", got, want)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.5:          "0.5",
		3:            "3",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}

func TestRegistryPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.CounterVec("a_total", "a")
	expectPanic("duplicate name", func() { r.CounterVec("a_total", "again") })
	expectPanic("bad metric name", func() { r.CounterVec("0bad", "x") })
	expectPanic("bad label name", func() { r.CounterVec("ok_total", "x", "0bad") })
	v := r.CounterVec("lbl_total", "x", "one")
	expectPanic("label arity", func() { v.With("a", "b") })
}

// checkExposition validates Prometheus text-format 0.0.4 structure: every
// sample line parses, every sample is preceded by its family's HELP/TYPE
// pair, histogram buckets are cumulative with _count equal to the +Inf
// bucket, and no family header appears twice.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	sampleRE := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[-+]?Inf|[-+0-9.eE]+)$`)
	helpRE := regexp.MustCompile(`^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*)( .*)?$`)
	seenHeader := map[string]bool{}
	declaredType := map[string]string{}
	bucketCum := map[string]uint64{}
	lastBucket := map[string]uint64{}

	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && declaredType[trimmed] == "histogram" {
				return trimmed
			}
		}
		return name
	}

	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			m := helpRE.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed comment line: %q", line)
			}
			key := m[1] + " " + m[2]
			if seenHeader[key] {
				t.Fatalf("family header repeated: %q", line)
			}
			seenHeader[key] = true
			if m[1] == "TYPE" {
				declaredType[m[2]] = strings.TrimSpace(m[3])
			}
			continue
		}
		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		fam := base(m[1])
		if declaredType[fam] == "" {
			t.Fatalf("sample %q has no preceding TYPE for family %q", line, fam)
		}
		if strings.HasSuffix(m[1], "_bucket") && declaredType[fam] == "histogram" {
			series := fam + stripLE(m[2])
			v, err := strconv.ParseUint(m[3], 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q not a count: %v", m[3], err)
			}
			if v < bucketCum[series] {
				t.Fatalf("bucket counts not cumulative at %q: %d < %d", line, v, bucketCum[series])
			}
			bucketCum[series] = v
			lastBucket[series] = v
			if strings.Contains(m[2], `le="+Inf"`) {
				delete(bucketCum, series) // next series for same labels restarts
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

// stripLE removes the le label from a label-set string so bucket lines of
// one series share a key.
func stripLE(labels string) string {
	re := regexp.MustCompile(`,?le="[^"]*"`)
	s := re.ReplaceAllString(labels, "")
	s = strings.ReplaceAll(s, "{,", "{")
	if s == "{}" {
		return ""
	}
	return s
}

func TestHandlerServesValidExposition(t *testing.T) {
	r := NewRegistry()
	reqs := r.CounterVec("factorml_http_requests_total", "Requests.", "endpoint", "status")
	lat := r.HistogramVec("factorml_http_request_seconds", "Latency.", nil, "endpoint")
	reqs.With("predict", "200").Add(10)
	reqs.With("ingest", "429").Add(2)
	for i := 0; i < 100; i++ {
		lat.With("predict").Observe(float64(i) * 0.003)
	}
	r.Collect(func(emit func(Sample)) {
		emit(Sample{Name: "factorml_engine_models", Help: "Models.", Value: 2})
		emit(Sample{Name: "factorml_dim_cache_hits_total", Help: "Hits.", Type: "counter", Value: 41})
	})

	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	buf := new(strings.Builder)
	if _, err := fmt.Fprint(buf, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	checkExposition(t, text)
	for _, needle := range []string{
		`factorml_http_requests_total{endpoint="predict",status="200"} 10`,
		`factorml_http_request_seconds_count{endpoint="predict"} 100`,
		`factorml_engine_models 2`,
		"# TYPE factorml_dim_cache_hits_total counter",
	} {
		if !strings.Contains(text, needle) {
			t.Fatalf("exposition missing %q:\n%s", needle, text)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestConcurrentObserveAndRender hammers counters and histograms from
// many goroutines while rendering concurrently; with -race this pins the
// lock-free hot path, and afterwards the totals must be exact (no lost
// updates in the CAS sum loop or the sync.Map children).
func TestConcurrentObserveAndRender(t *testing.T) {
	r := NewRegistry()
	reqs := r.CounterVec("c_total", "c", "endpoint")
	lat := r.HistogramVec("h_seconds", "h", []float64{0.01, 0.1, 1}, "endpoint")
	endpoints := []string{"predict", "ingest", "refresh"}

	const goroutines = 8
	const perG = 500
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() { // concurrent scraper
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
				checkExposition(t, render(r))
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ep := endpoints[(g+i)%len(endpoints)]
				reqs.With(ep).Inc()
				lat.With(ep).Observe(0.005 * float64(i%40))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-scraperDone

	var total uint64
	var obs uint64
	var sum float64
	for _, ep := range endpoints {
		total += reqs.With(ep).Value()
		obs += lat.With(ep).Count()
		h := lat.With(ep)
		sum += math.Float64frombits(h.sum.Load())
	}
	if total != goroutines*perG {
		t.Fatalf("counter total = %d, want %d", total, goroutines*perG)
	}
	if obs != goroutines*perG {
		t.Fatalf("observation total = %d, want %d", obs, goroutines*perG)
	}
	// Each goroutine observes 0.005*(i%40) for i in [0,500): 12 full
	// cycles of sum 0.005*780 plus i%40 for the last 20 → exact in
	// float64 terms only up to ordering, so check against a tolerance.
	wantPer := 0.0
	for i := 0; i < perG; i++ {
		wantPer += 0.005 * float64(i%40)
	}
	if diff := math.Abs(sum - wantPer*goroutines); diff > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v (diff %v)", sum, wantPer*goroutines, diff)
	}
}
