package metrics

import (
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries: an observation exactly at a bucket
// bound counts into that bucket (Prometheus `le` is inclusive), and the
// cumulative bucket counts render accordingly.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("b_test", "boundary test", []float64{0.1, 0.5, 1}, "ep").With("x")
	for _, v := range []float64{0.05, 0.1, 0.5, 1.0, 2.0} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		`b_test_bucket{ep="x",le="0.1"} 2`, // 0.05 and the boundary value 0.1
		`b_test_bucket{ep="x",le="0.5"} 3`, // + boundary value 0.5
		`b_test_bucket{ep="x",le="1"} 4`,   // + boundary value 1.0
		`b_test_bucket{ep="x",le="+Inf"} 5`,
		`b_test_count{ep="x"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramEmptyAndSingleBound: degenerate bucket layouts stay
// consistent — no bounds means everything lands in +Inf, one bound
// splits at exactly that value.
func TestHistogramEmptyAndSingleBound(t *testing.T) {
	r := NewRegistry()
	none := r.HistogramVec("nb_test", "no bounds", nil, "ep").With("x")
	none.Observe(-1)
	none.Observe(1e9)
	if none.Count() != 2 {
		t.Fatalf("no-bounds Count = %d, want 2", none.Count())
	}
	one := r.HistogramVec("ob_test", "one bound", []float64{0}, "ep").With("x")
	one.Observe(0)  // boundary: inclusive, lands in le="0"
	one.Observe(-5) // below
	one.Observe(5)  // above
	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		`ob_test_bucket{ep="x",le="0"} 2`,
		`ob_test_bucket{ep="x",le="+Inf"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramVecConcurrentChildCreation hammers With() for a mix of
// new and existing label values from many goroutines: every goroutine
// must land on the same child per label value (observations are never
// split across duplicate children) and the totals must add up.
func TestHistogramVecConcurrentChildCreation(t *testing.T) {
	r := NewRegistry()
	vec := r.HistogramVec("cc_test", "concurrent children", []float64{1}, "ep")
	const goroutines = 16
	const perG = 200
	labels := []string{"a", "b", "c", "d", "e"}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				vec.With(labels[(g+i)%len(labels)]).Observe(float64(i))
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for _, l := range labels {
		h := vec.With(l)
		if h != vec.With(l) {
			t.Fatalf("label %q resolved to two different children", l)
		}
		total += h.Count()
	}
	if want := uint64(goroutines * perG); total != want {
		t.Fatalf("observations across children = %d, want %d", total, want)
	}
}
