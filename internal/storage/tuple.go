package storage

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Tuple is the in-memory form of one record.
type Tuple struct {
	Keys     []int64
	Features []float64
	Target   float64
}

// PrimaryKey returns the value of the first key column.
func (t *Tuple) PrimaryKey() int64 { return t.Keys[0] }

// encode writes the tuple into dst (which must be at least RecordSize bytes)
// according to the schema layout.
func encodeTuple(dst []byte, s *Schema, t *Tuple) error {
	if len(t.Keys) != len(s.Keys) {
		return fmt.Errorf("storage: tuple has %d keys, schema %q wants %d", len(t.Keys), s.Name, len(s.Keys))
	}
	if len(t.Features) != len(s.Features) {
		return fmt.Errorf("storage: tuple has %d features, schema %q wants %d", len(t.Features), s.Name, len(s.Features))
	}
	off := 0
	for _, k := range t.Keys {
		binary.LittleEndian.PutUint64(dst[off:], uint64(k))
		off += 8
	}
	for _, f := range t.Features {
		binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(f))
		off += 8
	}
	if s.HasTarget {
		binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(t.Target))
	}
	return nil
}

// decodeTuple reads a record from src into t, reusing t's slices when they
// have the right capacity.
func decodeTuple(src []byte, s *Schema, t *Tuple) {
	if cap(t.Keys) < len(s.Keys) {
		t.Keys = make([]int64, len(s.Keys))
	}
	t.Keys = t.Keys[:len(s.Keys)]
	if cap(t.Features) < len(s.Features) {
		t.Features = make([]float64, len(s.Features))
	}
	t.Features = t.Features[:len(s.Features)]
	off := 0
	for i := range t.Keys {
		t.Keys[i] = int64(binary.LittleEndian.Uint64(src[off:]))
		off += 8
	}
	for i := range t.Features {
		t.Features[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
		off += 8
	}
	if s.HasTarget {
		t.Target = math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
	} else {
		t.Target = 0
	}
}

// Clone returns a deep copy of the tuple.
func (t *Tuple) Clone() *Tuple {
	return &Tuple{
		Keys:     append([]int64{}, t.Keys...),
		Features: append([]float64{}, t.Features...),
		Target:   t.Target,
	}
}
