package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

const catalogFile = "catalog.json"

type catalogEntry struct {
	Name      string   `json:"name"`
	Keys      []string `json:"keys"`
	Features  []string `json:"features"`
	Refs      []string `json:"refs,omitempty"`
	HasTarget bool     `json:"has_target"`
	// Stats is the table's planner statistics snapshot (see TableStats);
	// absent in catalogs written before the cost-based planner existed, in
	// which case the first Stats call after reopening rescans the keys.
	Stats *TableStats `json:"stats,omitempty"`
}

// saveCatalog persists the schemas — and planner statistics — of all
// tables so a database directory can be reopened by a later process.
func (db *Database) saveCatalog() error { return db.saveCatalogSync(false) }

// saveCatalogSync is saveCatalog with optional fsync of the temp file
// before the rename, for checkpoints that must survive power loss.
func (db *Database) saveCatalogSync(sync bool) error {
	entries := make([]catalogEntry, 0, len(db.tables))
	for _, name := range db.TableNames() {
		t := db.tables[name]
		s := t.schema
		entries = append(entries, catalogEntry{
			Name: s.Name, Keys: s.Keys, Features: s.Features, Refs: s.Refs, HasTarget: s.HasTarget,
			Stats: t.statsForCatalog(),
		})
	}
	blob, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(db.dir, catalogFile+".tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("storage: writing catalog: %w", err)
	}
	if sync {
		if f, err := os.Open(tmp); err == nil {
			f.Sync()
			f.Close()
		}
	}
	if err := os.Rename(tmp, filepath.Join(db.dir, catalogFile)); err != nil {
		return err
	}
	// Every table's statistics are now in the persisted catalog; further
	// Flushes can skip the rewrite until new keys arrive.
	for _, t := range db.tables {
		t.statsDirty = false
	}
	return nil
}

// loadCatalog reopens every table recorded in the catalog file, if present.
func (db *Database) loadCatalog() error {
	blob, err := os.ReadFile(filepath.Join(db.dir, catalogFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: reading catalog: %w", err)
	}
	var entries []catalogEntry
	if err := json.Unmarshal(blob, &entries); err != nil {
		return fmt.Errorf("storage: parsing catalog: %w", err)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	for _, e := range entries {
		schema := &Schema{Name: e.Name, Keys: e.Keys, Features: e.Features, Refs: e.Refs, HasTarget: e.HasTarget}
		if err := db.openExisting(schema); err != nil {
			return err
		}
		if e.Stats != nil {
			db.tables[e.Name].loadedStats = e.Stats
		}
	}
	return nil
}

// openExisting attaches an existing heap file, recovering tuple counts from
// the file size and the last page's record-count header.
func (db *Database) openExisting(s *Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	path := filepath.Join(db.dir, s.Name+".tbl")
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: opening table file: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if info.Size()%PageSize != 0 {
		f.Close()
		return fmt.Errorf("storage: table file %q has torn size %d", path, info.Size())
	}
	pages := info.Size() / PageSize
	t := &Table{
		schema: s.Clone(s.Name),
		db:     db,
		fileID: db.nextFileID,
		file:   f,
		path:   path,
	}
	db.nextFileID++

	perPage := int64(s.RecordsPerPage())
	if pages > 0 {
		last := newPage()
		if _, err := f.ReadAt(last.buf, (pages-1)*PageSize); err != nil {
			f.Close()
			return fmt.Errorf("storage: reading tail page of %q: %w", path, err)
		}
		n := last.numRecords()
		if int64(n) == perPage {
			// All pages full.
			t.numPages = pages
			t.numTuples = pages * perPage
		} else {
			// Last page is a partial tail: keep it buffered for appends.
			t.numPages = pages - 1
			t.numTuples = (pages-1)*perPage + int64(n)
			t.tail = last
			t.tailUsed = n
			t.flushed = true
		}
	}
	db.tables[s.Name] = t
	return nil
}
