package storage

import (
	"testing"
)

// statsTestSchema is a fact-like relation: sid plus two foreign keys.
func statsTestSchema(name string) *Schema {
	return &Schema{
		Name:     name,
		Keys:     []string{"sid", "fk1", "fk2"},
		Features: []string{"a", "b", "c"},
	}
}

func TestTableStatsCollectedAtAppend(t *testing.T) {
	db, err := Open(t.TempDir(), Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(statsTestSchema("facts"))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		tp := &Tuple{Keys: []int64{i, i % 7, i % 3}, Features: []float64{1, 2, 3}}
		if err := tbl.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	s, err := tbl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows != 100 || s.Width != 3 {
		t.Fatalf("Stats = %+v, want Rows=100 Width=3", s)
	}
	if len(s.FKDistinct) != 2 || s.FKDistinct[0] != 7 || s.FKDistinct[1] != 3 {
		t.Fatalf("FKDistinct = %v, want [7 3]", s.FKDistinct)
	}
	if s.Pages < 1 {
		t.Fatalf("Pages = %d, want >= 1", s.Pages)
	}
	if got, want := s.FanOut(0), 100.0/7.0; got != want {
		t.Fatalf("FanOut(0) = %g, want %g", got, want)
	}
	if got := s.FanOut(5); got != 0 {
		t.Fatalf("FanOut out of range = %g, want 0", got)
	}
}

func TestTableStatsPersistAndReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(statsTestSchema("facts"))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i++ {
		if err := tbl.Append(&Tuple{Keys: []int64{i, i % 5, i % 2}, Features: []float64{0, 0, 0}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Flush(); err != nil { // persists stats into the catalog
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: statistics must be served from the catalog without a scan.
	db2, err := Open(dir, Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.Table("facts")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.loadedStats == nil {
		t.Fatal("reopened table has no catalog statistics")
	}
	s, err := tbl2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows != 50 || s.FKDistinct[0] != 5 || s.FKDistinct[1] != 2 {
		t.Fatalf("reopened Stats = %+v, want Rows=50 FKDistinct=[5 2]", s)
	}

	// First write after reopening hydrates the distinct sets from the heap
	// and keeps maintaining them incrementally.
	if err := tbl2.Append(&Tuple{Keys: []int64{50, 40, 2}, Features: []float64{0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	s, err = tbl2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows != 51 || s.FKDistinct[0] != 6 || s.FKDistinct[1] != 3 {
		t.Fatalf("post-append Stats = %+v, want Rows=51 FKDistinct=[6 3]", s)
	}
}

func TestTableStatsStalePersistedCopyRescans(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(statsTestSchema("facts"))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := tbl.Append(&Tuple{Keys: []int64{i, i % 4, 0}, Features: []float64{0, 0, 0}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.Table("facts")
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a pre-planner catalog: no persisted statistics at all.
	tbl2.loadedStats = nil
	s, err := tbl2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows != 10 || s.FKDistinct[0] != 4 || s.FKDistinct[1] != 1 {
		t.Fatalf("rescanned Stats = %+v, want Rows=10 FKDistinct=[4 1]", s)
	}
}

func TestTableStatsUpdateAtCountsNewKey(t *testing.T) {
	db, err := Open(t.TempDir(), Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(statsTestSchema("facts"))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := tbl.Append(&Tuple{Keys: []int64{i, 0, 0}, Features: []float64{0, 0, 0}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.UpdateAt(1, &Tuple{Keys: []int64{1, 9, 0}, Features: []float64{1, 1, 1}}); err != nil {
		t.Fatal(err)
	}
	s, err := tbl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// The new key is counted; the old one may linger (documented upper
	// bound), so distinct ∈ {2}.
	if s.FKDistinct[0] != 2 {
		t.Fatalf("FKDistinct[0] = %d, want 2 (0 and 9)", s.FKDistinct[0])
	}
}
