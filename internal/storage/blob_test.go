package storage

import (
	"errors"
	"os"
	"reflect"
	"testing"
)

func TestBlobRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if err := db.PutBlob("model.m1", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := db.PutBlob("model.m2", []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, err := db.GetBlob("model.m1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"a":1}` {
		t.Fatalf("blob contents %q", got)
	}

	// Overwrite is atomic and visible.
	if err := db.PutBlob("model.m1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err = db.GetBlob("model.m1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("blob contents after overwrite %q", got)
	}

	names, err := db.BlobNames()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"model.m1", "model.m2"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("BlobNames = %v, want %v", names, want)
	}

	// Blobs survive a close/reopen cycle.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, err = db2.GetBlob("model.m2")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "two" {
		t.Fatalf("blob contents after reopen %q", got)
	}

	if err := db2.DeleteBlob("model.m2"); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.GetBlob("model.m2"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("GetBlob after delete: %v, want not-exist", err)
	}
	if err := db2.DeleteBlob("model.m2"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("double delete: %v, want not-exist", err)
	}
}

func TestBlobNameValidation(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for _, bad := range []string{"", ".", "..", ".hidden", "a/b", "a\\b", "a b", "café", string(make([]byte, 200))} {
		if err := db.PutBlob(bad, []byte("x")); err == nil {
			t.Errorf("PutBlob(%q) accepted an invalid name", bad)
		}
		if _, err := db.GetBlob(bad); err == nil {
			t.Errorf("GetBlob(%q) accepted an invalid name", bad)
		}
	}
	if _, err := db.GetBlob("missing"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("GetBlob(missing): %v, want not-exist", err)
	}
	// An empty blob directory lists as empty, not as an error.
	names, err := db.BlobNames()
	if err != nil || len(names) != 0 {
		t.Fatalf("BlobNames on fresh db = %v, %v", names, err)
	}
}
