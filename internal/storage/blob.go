package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// blobDir is the subdirectory of a database directory holding named blobs
// (model payloads and other non-tabular artifacts persisted through the
// catalog directory).
const blobDir = "blobs"

// validBlobName reports whether name is safe to use as a file name inside
// the blob directory: non-empty, no path separators, no leading dot, only
// letters, digits, '.', '_' and '-'.
func validBlobName(name string) bool {
	if name == "" || len(name) > 128 || strings.HasPrefix(name, ".") {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

func (db *Database) blobPath(name string) (string, error) {
	if !validBlobName(name) {
		return "", fmt.Errorf("storage: invalid blob name %q", name)
	}
	return filepath.Join(db.dir, blobDir, name), nil
}

// PutBlob atomically persists a named blob in the database directory,
// replacing any previous contents. Blobs survive Close/Open cycles of the
// database and are listed by BlobNames.
func (db *Database) PutBlob(name string, data []byte) error {
	path, err := db.blobPath(name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("storage: creating blob dir: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: writing blob %q: %w", name, err)
	}
	return os.Rename(tmp, path)
}

// GetBlob returns the contents of a named blob. A missing blob is an error
// that satisfies errors.Is(err, os.ErrNotExist).
func (db *Database) GetBlob(name string) ([]byte, error) {
	path, err := db.blobPath(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: reading blob %q: %w", name, err)
	}
	return data, nil
}

// DeleteBlob removes a named blob. Deleting a missing blob is an error that
// satisfies errors.Is(err, os.ErrNotExist).
func (db *Database) DeleteBlob(name string) error {
	path, err := db.blobPath(name)
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("storage: deleting blob %q: %w", name, err)
	}
	return nil
}

// BlobNames lists the stored blobs in sorted order.
func (db *Database) BlobNames() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(db.dir, blobDir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("storage: listing blobs: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !validBlobName(e.Name()) || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}
