package storage

// TableStats summarizes a relation for the cost-based strategy planner
// (internal/plan): row and page counts, feature width, and the number of
// distinct values per foreign-key column — from which the per-level
// fan-out of a join falls out (FanOut).
//
// Lifecycle: the counters are maintained incrementally at Append/UpdateAt
// (distinct foreign keys via in-memory sets), persisted into the catalog
// at Flush and Close, and restored on reopen. A reopened table serves its
// persisted statistics without touching the heap; the first write after
// reopening (or a Stats call finding the persisted copy stale) hydrates
// the distinct sets with one key-only scan, after which maintenance is
// incremental again. Updates that change a foreign key may leave the old
// value counted — distinct counts are upper bounds after in-place updates,
// which is the safe direction for a planner.
type TableStats struct {
	Rows       int64   `json:"rows"`
	Pages      int64   `json:"pages"`
	Width      int     `json:"width"`
	FKDistinct []int64 `json:"fk_distinct,omitempty"`
}

// FanOut returns the average number of this table's rows per distinct
// value of its i-th foreign-key column (Rows / FKDistinct[i]) — the
// per-level fan-out the planner prices per-group computation reuse with.
// It returns 0 when the column is unknown or empty.
func (s TableStats) FanOut(i int) float64 {
	if i < 0 || i >= len(s.FKDistinct) || s.FKDistinct[i] == 0 {
		return 0
	}
	return float64(s.Rows) / float64(s.FKDistinct[i])
}

// clone returns a deep copy.
func (s TableStats) clone() TableStats {
	c := s
	if s.FKDistinct != nil {
		c.FKDistinct = append([]int64{}, s.FKDistinct...)
	}
	return c
}

// Stats returns the table's current statistics. When the table was
// reopened and not written since, the catalog-persisted statistics are
// served as-is; otherwise the in-memory distinct sets are consulted,
// hydrating them with one key-only scan if the persisted copy is stale or
// missing.
func (t *Table) Stats() (TableStats, error) {
	if t.fkSets == nil {
		if t.loadedStats != nil && t.loadedStats.Rows == t.numTuples &&
			len(t.loadedStats.FKDistinct) == t.schema.NumKeys()-1 {
			s := t.loadedStats.clone()
			s.Pages = t.NumPages() // cheap and always current
			s.Width = t.schema.NumFeatures()
			return s, nil
		}
		if err := t.hydrateFKSets(); err != nil {
			return TableStats{}, err
		}
	}
	return t.statsFromSets(), nil
}

func (t *Table) statsFromSets() TableStats {
	s := TableStats{
		Rows:       t.numTuples,
		Pages:      t.NumPages(),
		Width:      t.schema.NumFeatures(),
		FKDistinct: make([]int64, len(t.fkSets)),
	}
	for i, set := range t.fkSets {
		s.FKDistinct[i] = int64(len(set))
	}
	return s
}

// statsForCatalog returns the statistics to persist, without forcing a
// hydration scan: live sets when the table has been written this session,
// the previously persisted copy otherwise (nil when neither exists).
func (t *Table) statsForCatalog() *TableStats {
	if t.fkSets != nil {
		s := t.statsFromSets()
		return &s
	}
	if t.loadedStats != nil {
		s := t.loadedStats.clone()
		s.Pages = t.NumPages()
		s.Width = t.schema.NumFeatures()
		return &s
	}
	return nil
}

// hydrateFKSets builds the distinct-foreign-key sets with one key-only
// scan of the heap. Called lazily: on the first write to a reopened table,
// or by Stats when the persisted statistics are stale.
func (t *Table) hydrateFKSets() error {
	nfk := t.schema.NumKeys() - 1
	sets := make([]map[int64]struct{}, nfk)
	for i := range sets {
		sets[i] = make(map[int64]struct{})
	}
	if t.numTuples > 0 && nfk > 0 {
		sc := t.NewScanner()
		for sc.Next() {
			keys := sc.Tuple().Keys
			for i := range sets {
				sets[i][keys[1+i]] = struct{}{}
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	t.fkSets = sets
	return nil
}

// noteKeys folds one tuple's foreign keys into the distinct sets,
// hydrating them first if this is the first write since reopening.
func (t *Table) noteKeys(keys []int64) error {
	if t.fkSets == nil {
		if err := t.hydrateFKSets(); err != nil {
			return err
		}
	}
	for i := range t.fkSets {
		t.fkSets[i][keys[1+i]] = struct{}{}
	}
	t.statsDirty = true
	return nil
}
