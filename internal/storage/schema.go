package storage

import (
	"fmt"
	"strings"
)

// Schema describes the fixed-width record layout of a relation.
//
// A record is laid out as: all key columns (int64, little endian), then all
// feature columns (float64), then — if HasTarget — a single float64 target.
// The first key column is the relation's primary identifier; any further key
// columns are foreign keys.
//
// Refs, when set, names the table each foreign-key column references:
// Refs[i] is the target of Keys[1+i]. This is how snowflake schemas are
// recorded in the catalog — a dimension table whose Refs are non-empty
// references sub-dimension tables, and consumers (the join planner, the
// serving engine, cmd/train, cmd/serve) expand the hierarchy from the
// catalog alone. Refs is optional: a nil Refs leaves the references
// unrecorded, which every pre-snowflake caller relied on.
type Schema struct {
	Name      string
	Keys      []string // int64 columns; Keys[0] is the primary key
	Features  []string // float64 columns
	Refs      []string // referenced table per foreign key (len 0 or len(Keys)-1)
	HasTarget bool     // trailing float64 target column (Y in the paper)
}

// Validate reports structural problems with the schema.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("storage: schema has empty name")
	}
	if len(s.Keys) == 0 {
		return fmt.Errorf("storage: schema %q has no key columns", s.Name)
	}
	seen := make(map[string]bool)
	for _, c := range append(append([]string{}, s.Keys...), s.Features...) {
		if c == "" {
			return fmt.Errorf("storage: schema %q has an empty column name", s.Name)
		}
		if seen[c] {
			return fmt.Errorf("storage: schema %q has duplicate column %q", s.Name, c)
		}
		seen[c] = true
	}
	if len(s.Refs) != 0 && len(s.Refs) != len(s.Keys)-1 {
		return fmt.Errorf("storage: schema %q has %d foreign-key refs for %d foreign-key columns",
			s.Name, len(s.Refs), len(s.Keys)-1)
	}
	for i, ref := range s.Refs {
		if ref == "" {
			return fmt.Errorf("storage: schema %q has an empty ref for key column %q", s.Name, s.Keys[1+i])
		}
	}
	if s.RecordSize() > PageDataSize {
		return fmt.Errorf("storage: schema %q record size %d exceeds page capacity %d",
			s.Name, s.RecordSize(), PageDataSize)
	}
	return nil
}

// NumKeys returns the number of int64 key columns.
func (s *Schema) NumKeys() int { return len(s.Keys) }

// NumFeatures returns the number of float64 feature columns.
func (s *Schema) NumFeatures() int { return len(s.Features) }

// RecordSize returns the on-page size of one record in bytes.
func (s *Schema) RecordSize() int {
	n := 8*len(s.Keys) + 8*len(s.Features)
	if s.HasTarget {
		n += 8
	}
	return n
}

// RecordsPerPage returns how many records fit in one page.
func (s *Schema) RecordsPerPage() int {
	return PageDataSize / s.RecordSize()
}

// String renders the schema as "name(keys; features; target?)".
func (s *Schema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s; %s", s.Name, strings.Join(s.Keys, ","), strings.Join(s.Features, ","))
	if s.HasTarget {
		b.WriteString("; Y")
	}
	b.WriteString(")")
	return b.String()
}

// Clone returns a deep copy of the schema with a new name.
func (s *Schema) Clone(name string) *Schema {
	c := &Schema{
		Name:      name,
		Keys:      append([]string{}, s.Keys...),
		Features:  append([]string{}, s.Features...),
		HasTarget: s.HasTarget,
	}
	if len(s.Refs) > 0 {
		c.Refs = append([]string{}, s.Refs...)
	}
	return c
}
