package storage

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func testSchema(name string, nKeys, nFeat int, target bool) *Schema {
	s := &Schema{Name: name, HasTarget: target}
	for i := 0; i < nKeys; i++ {
		s.Keys = append(s.Keys, fmt.Sprintf("k%d", i))
	}
	for i := 0; i < nFeat; i++ {
		s.Features = append(s.Features, fmt.Sprintf("f%d", i))
	}
	return s
}

func openTestDB(t *testing.T, poolPages int) *Database {
	t.Helper()
	db, err := Open(t.TempDir(), Options{PoolPages: poolPages})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestSchemaValidate(t *testing.T) {
	cases := []struct {
		name string
		s    *Schema
		ok   bool
	}{
		{"valid", testSchema("a", 1, 2, false), true},
		{"valid target", testSchema("b", 2, 3, true), true},
		{"empty name", testSchema("", 1, 1, false), false},
		{"no keys", testSchema("c", 0, 1, false), false},
		{"dup column", &Schema{Name: "d", Keys: []string{"x"}, Features: []string{"x"}}, false},
		{"empty column", &Schema{Name: "e", Keys: []string{""}}, false},
		{"too wide", testSchema("f", 1, 1100, false), false},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestSchemaRecordLayout(t *testing.T) {
	s := testSchema("t", 2, 3, true)
	if got := s.RecordSize(); got != 2*8+3*8+8 {
		t.Fatalf("RecordSize = %d, want 48", got)
	}
	if got := s.RecordsPerPage(); got != PageDataSize/48 {
		t.Fatalf("RecordsPerPage = %d", got)
	}
}

func TestAppendGetRoundTrip(t *testing.T) {
	db := openTestDB(t, -1)
	tbl, err := db.CreateTable(testSchema("r", 1, 3, true))
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	rng := rand.New(rand.NewSource(5))
	want := make([]*Tuple, n)
	for i := 0; i < n; i++ {
		tp := &Tuple{
			Keys:     []int64{int64(i)},
			Features: []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
			Target:   rng.Float64(),
		}
		want[i] = tp
		if err := tbl.Append(tp.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	var got Tuple
	for _, i := range []int64{0, 1, 169, 170, 999} {
		if err := tbl.Get(i, &got); err != nil {
			t.Fatal(err)
		}
		w := want[i]
		if got.Keys[0] != w.Keys[0] || got.Target != w.Target {
			t.Fatalf("row %d: got %+v want %+v", i, got, *w)
		}
		for j := range w.Features {
			if got.Features[j] != w.Features[j] {
				t.Fatalf("row %d feature %d: got %v want %v", i, j, got.Features[j], w.Features[j])
			}
		}
	}
}

func TestGetOutOfRange(t *testing.T) {
	db := openTestDB(t, -1)
	tbl, _ := db.CreateTable(testSchema("r", 1, 1, false))
	var tp Tuple
	if err := tbl.Get(0, &tp); err == nil {
		t.Fatal("Get on empty table should fail")
	}
	if err := tbl.Get(-1, &tp); err == nil {
		t.Fatal("Get(-1) should fail")
	}
}

func TestScannerFullScan(t *testing.T) {
	db := openTestDB(t, -1)
	tbl, _ := db.CreateTable(testSchema("r", 1, 2, false))
	const n = 2345
	for i := 0; i < n; i++ {
		err := tbl.Append(&Tuple{Keys: []int64{int64(i)}, Features: []float64{float64(i), -float64(i)}})
		if err != nil {
			t.Fatal(err)
		}
	}
	sc := tbl.NewScanner()
	i := int64(0)
	for sc.Next() {
		tp := sc.Tuple()
		if tp.Keys[0] != i || tp.Features[0] != float64(i) {
			t.Fatalf("scan row %d: got key %d feat %v", i, tp.Keys[0], tp.Features[0])
		}
		i++
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if i != n {
		t.Fatalf("scanned %d rows, want %d", i, n)
	}
}

func TestScanUnflushedTail(t *testing.T) {
	// The tail page lives only in memory until Flush; scans must still see it.
	db := openTestDB(t, -1)
	tbl, _ := db.CreateTable(testSchema("r", 1, 1, false))
	for i := 0; i < 3; i++ {
		if err := tbl.Append(&Tuple{Keys: []int64{int64(i)}, Features: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	sc := tbl.NewScanner()
	count := 0
	for sc.Next() {
		count++
	}
	if count != 3 {
		t.Fatalf("scanned %d rows from unflushed tail, want 3", count)
	}
}

func TestNumPages(t *testing.T) {
	db := openTestDB(t, -1)
	s := testSchema("r", 1, 1, false) // 16-byte records, 511 per page
	tbl, _ := db.CreateTable(s)
	per := int64(s.RecordsPerPage())
	for i := int64(0); i < per+1; i++ {
		if err := tbl.Append(&Tuple{Keys: []int64{i}, Features: []float64{0}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tbl.NumPages(); got != 2 {
		t.Fatalf("NumPages = %d, want 2 (one full + tail)", got)
	}
	if got := tbl.NumTuples(); got != per+1 {
		t.Fatalf("NumTuples = %d, want %d", got, per+1)
	}
}

func TestBufferPoolCountsAndLRU(t *testing.T) {
	db := openTestDB(t, 2) // tiny pool: 2 pages
	s := testSchema("r", 1, 1, false)
	tbl, _ := db.CreateTable(s)
	per := s.RecordsPerPage()
	for i := 0; i < 4*per; i++ { // 4 full pages
		if err := tbl.Append(&Tuple{Keys: []int64{int64(i)}, Features: []float64{0}}); err != nil {
			t.Fatal(err)
		}
	}
	db.Pool().ResetStats()
	var tp Tuple
	// Touch pages 0,1 -> misses. 0,1 again -> hits. 2,3 -> misses evicting 0,1.
	for _, row := range []int64{0, int64(per), 0, int64(per), int64(2 * per), int64(3 * per)} {
		if err := tbl.Get(row, &tp); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Pool().Stats()
	if st.LogicalReads != 6 {
		t.Fatalf("LogicalReads = %d, want 6", st.LogicalReads)
	}
	if st.PhysicalReads != 4 {
		t.Fatalf("PhysicalReads = %d, want 4", st.PhysicalReads)
	}
	// Page 0 was evicted; reading it again is physical.
	if err := tbl.Get(0, &tp); err != nil {
		t.Fatal(err)
	}
	if got := db.Pool().Stats().PhysicalReads; got != 5 {
		t.Fatalf("PhysicalReads after eviction = %d, want 5", got)
	}
}

func TestZeroCapacityPool(t *testing.T) {
	db := openTestDB(t, 0)
	s := testSchema("r", 1, 1, false)
	tbl, _ := db.CreateTable(s)
	for i := 0; i < s.RecordsPerPage(); i++ {
		if err := tbl.Append(&Tuple{Keys: []int64{int64(i)}, Features: []float64{0}}); err != nil {
			t.Fatal(err)
		}
	}
	db.Pool().ResetStats()
	var tp Tuple
	for i := 0; i < 3; i++ {
		if err := tbl.Get(0, &tp); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Pool().Stats()
	if st.PhysicalReads != 3 {
		t.Fatalf("PhysicalReads = %d, want 3 with zero-capacity pool", st.PhysicalReads)
	}
}

func TestPageWriteCounter(t *testing.T) {
	db := openTestDB(t, -1)
	s := testSchema("r", 1, 1, false)
	tbl, _ := db.CreateTable(s)
	per := s.RecordsPerPage()
	for i := 0; i < 2*per; i++ {
		if err := tbl.Append(&Tuple{Keys: []int64{int64(i)}, Features: []float64{0}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Pool().Stats().PageWrites; got != 2 {
		t.Fatalf("PageWrites = %d, want 2 after two full pages", got)
	}
	if err := tbl.Append(&Tuple{Keys: []int64{99}, Features: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := db.Pool().Stats().PageWrites; got != 3 {
		t.Fatalf("PageWrites = %d, want 3 after flushing tail", got)
	}
	// Flushing again without new appends is a no-op.
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := db.Pool().Stats().PageWrites; got != 3 {
		t.Fatalf("PageWrites = %d, want 3 after idempotent flush", got)
	}
}

func TestCatalog(t *testing.T) {
	db := openTestDB(t, -1)
	if _, err := db.CreateTable(testSchema("a", 1, 1, false)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(testSchema("b", 1, 1, false)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(testSchema("a", 1, 1, false)); err == nil {
		t.Fatal("duplicate CreateTable should fail")
	}
	if _, err := db.Table("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("missing"); err == nil {
		t.Fatal("Table(missing) should fail")
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("TableNames = %v", names)
	}
	if err := db.DropTable("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("a"); err == nil {
		t.Fatal("dropped table still visible")
	}
	if err := db.DropTable("a"); err == nil {
		t.Fatal("double drop should fail")
	}
}

func TestTupleEncodeErrors(t *testing.T) {
	db := openTestDB(t, -1)
	tbl, _ := db.CreateTable(testSchema("r", 1, 2, false))
	if err := tbl.Append(&Tuple{Keys: []int64{1}, Features: []float64{1}}); err == nil {
		t.Fatal("wrong feature arity should fail")
	}
	if err := tbl.Append(&Tuple{Keys: []int64{1, 2}, Features: []float64{1, 2}}); err == nil {
		t.Fatal("wrong key arity should fail")
	}
}

func TestSpecialFloatValuesRoundTrip(t *testing.T) {
	db := openTestDB(t, -1)
	tbl, _ := db.CreateTable(testSchema("r", 1, 3, true))
	in := &Tuple{
		Keys:     []int64{-7},
		Features: []float64{math.Inf(1), math.Inf(-1), math.Copysign(0, -1)},
		Target:   math.MaxFloat64,
	}
	if err := tbl.Append(in); err != nil {
		t.Fatal(err)
	}
	var out Tuple
	if err := tbl.Get(0, &out); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(out.Features[0], 1) || !math.IsInf(out.Features[1], -1) {
		t.Fatalf("infinities lost: %v", out.Features)
	}
	if math.Signbit(out.Features[2]) != true {
		t.Fatal("negative zero sign lost")
	}
	if out.Target != math.MaxFloat64 || out.Keys[0] != -7 {
		t.Fatalf("target/keys lost: %+v", out)
	}
}

func TestStatsSubAndString(t *testing.T) {
	a := IOStats{LogicalReads: 10, PhysicalReads: 4, PageWrites: 2}
	b := IOStats{LogicalReads: 3, PhysicalReads: 1, PageWrites: 2}
	d := a.Sub(b)
	if d.LogicalReads != 7 || d.PhysicalReads != 3 || d.PageWrites != 0 {
		t.Fatalf("Sub = %+v", d)
	}
	if d.String() == "" {
		t.Fatal("String empty")
	}
}
