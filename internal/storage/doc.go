// Package storage implements the paged relational storage engine underneath
// the factorized learning algorithms. It plays the role PostgreSQL plays in
// the paper's artifact: durable storage of the input relations S and R and
// of the materialized join result T.
//
// Relations are heap files of fixed-width records (int64 key columns,
// float64 feature columns, optional float64 target) packed into 8 KiB pages.
// All page traffic flows through a shared buffer pool that keeps LRU
// replacement statistics and separates logical page requests from physical
// file reads, so that the paper's analytic I/O cost model (§V-A, block
// nested loops join page counts) can be verified against measured counters.
package storage
