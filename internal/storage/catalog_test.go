package storage

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCatalogReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	s := testSchema("orders", 2, 3, true)
	tbl, err := db.CreateTable(s)
	if err != nil {
		t.Fatal(err)
	}
	per := s.RecordsPerPage()
	n := per + 7 // one full page plus a partial tail
	for i := 0; i < n; i++ {
		err := tbl.Append(&Tuple{
			Keys:     []int64{int64(i), int64(i % 3)},
			Features: []float64{float64(i), 2, 3},
			Target:   float64(i) / 2,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.NumTuples() != int64(n) {
		t.Fatalf("reopened NumTuples = %d, want %d", tbl2.NumTuples(), n)
	}
	if tbl2.Schema().String() != s.String() {
		t.Fatalf("schema changed across reopen: %v vs %v", tbl2.Schema(), s)
	}
	var tp Tuple
	if err := tbl2.Get(int64(n-1), &tp); err != nil {
		t.Fatal(err)
	}
	if tp.Keys[0] != int64(n-1) || tp.Target != float64(n-1)/2 {
		t.Fatalf("last tuple wrong after reopen: %+v", tp)
	}

	// Appends must continue in the partial tail without corrupting data.
	if err := tbl2.Append(&Tuple{Keys: []int64{900, 0}, Features: []float64{9, 9, 9}, Target: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tbl2.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tbl2.Get(int64(n), &tp); err != nil {
		t.Fatal(err)
	}
	if tp.Keys[0] != 900 {
		t.Fatalf("appended tuple wrong: %+v", tp)
	}
	sc := tbl2.NewScanner()
	count := 0
	for sc.Next() {
		count++
	}
	if count != n+1 {
		t.Fatalf("scan after reopen+append: %d rows, want %d", count, n+1)
	}
}

func TestCatalogReopenExactPageBoundary(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	s := testSchema("r", 1, 1, false)
	tbl, _ := db.CreateTable(s)
	per := s.RecordsPerPage()
	for i := 0; i < 2*per; i++ {
		if err := tbl.Append(&Tuple{Keys: []int64{int64(i)}, Features: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	db2, err := Open(dir, Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.Table("r")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.NumTuples() != int64(2*per) {
		t.Fatalf("NumTuples = %d, want %d", tbl2.NumTuples(), 2*per)
	}
	if tbl2.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", tbl2.NumPages())
	}
}

func TestCatalogDropPersisted(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, Options{PoolPages: -1})
	if _, err := db.CreateTable(testSchema("a", 1, 1, false)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(testSchema("b", 1, 1, false)); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("a"); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(dir, Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Table("a"); err == nil {
		t.Fatal("dropped table resurrected after reopen")
	}
	if _, err := db2.Table("b"); err != nil {
		t.Fatal("surviving table lost after reopen")
	}
}

func TestCatalogCorruptFileRejected(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, Options{PoolPages: -1})
	if _, err := db.CreateTable(testSchema("x", 1, 1, false)); err != nil {
		t.Fatal(err)
	}
	db.Close()
	// Truncate the heap file to a torn size.
	if err := writeFileSize(filepath.Join(dir, "x.tbl"), 100); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{PoolPages: -1}); err == nil {
		t.Fatal("torn table file should fail to open")
	}
}

// writeFileSize truncates/extends a file to an exact size (test helper).
func writeFileSize(path string, size int64) error {
	return os.Truncate(path, size)
}
