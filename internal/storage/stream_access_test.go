package storage

import (
	"testing"
)

func streamTestTable(t *testing.T, n int64) *Table {
	t.Helper()
	db, err := Open(t.TempDir(), Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	tbl, err := db.CreateTable(&Schema{Name: "t", Keys: []string{"id"}, Features: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		if err := tbl.Append(&Tuple{Keys: []int64{i}, Features: []float64{float64(i), 2 * float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestNewScannerAt(t *testing.T) {
	// Enough rows to span several pages, plus a buffered (unflushed) tail.
	const n = 1000
	tbl := streamTestTable(t, n)

	for _, start := range []int64{0, 1, 499, 997, n - 1, n} {
		sc, err := tbl.NewScannerAt(start)
		if err != nil {
			t.Fatalf("NewScannerAt(%d): %v", start, err)
		}
		want := start
		for sc.Next() {
			tp := sc.Tuple()
			if tp.PrimaryKey() != want || tp.Features[0] != float64(want) {
				t.Fatalf("scan from %d: got key %d features %v, want key %d", start, tp.PrimaryKey(), tp.Features, want)
			}
			want++
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if want != n {
			t.Fatalf("scan from %d served %d rows, want %d", start, want-start, n-start)
		}
	}
	if _, err := tbl.NewScannerAt(-1); err == nil {
		t.Fatal("NewScannerAt(-1) accepted")
	}
	if _, err := tbl.NewScannerAt(n + 1); err == nil {
		t.Fatal("NewScannerAt(past end) accepted")
	}
}

func TestUpdateAt(t *testing.T) {
	const n = 1000 // rows on full pages and in the tail
	tbl := streamTestTable(t, n)

	for _, row := range []int64{0, 3, 700, n - 1} {
		var old Tuple
		if err := tbl.Get(row, &old); err != nil {
			t.Fatal(err)
		}
		upd := &Tuple{Keys: []int64{old.PrimaryKey()}, Features: []float64{-1, -2}}
		if err := tbl.UpdateAt(row, upd); err != nil {
			t.Fatalf("UpdateAt(%d): %v", row, err)
		}
		var got Tuple
		if err := tbl.Get(row, &got); err != nil {
			t.Fatal(err)
		}
		if got.Features[0] != -1 || got.Features[1] != -2 {
			t.Fatalf("row %d after update = %v", row, got.Features)
		}
	}
	// Neighbors are untouched.
	var neighbor Tuple
	if err := tbl.Get(4, &neighbor); err != nil {
		t.Fatal(err)
	}
	if neighbor.Features[0] != 4 {
		t.Fatalf("row 4 corrupted by update of row 3: %v", neighbor.Features)
	}
	// A full scan observes the updates (pool caches were invalidated).
	sc := tbl.NewScanner()
	count := 0
	for sc.Next() {
		if sc.Tuple().PrimaryKey() == 700 && sc.Tuple().Features[0] != -1 {
			t.Fatalf("scan saw stale row 700: %v", sc.Tuple().Features)
		}
		count++
	}
	if sc.Err() != nil || count != n {
		t.Fatalf("scan after updates: n=%d err=%v", count, sc.Err())
	}

	// Primary keys are immutable; range is checked.
	if err := tbl.UpdateAt(0, &Tuple{Keys: []int64{42}, Features: []float64{0, 0}}); err == nil {
		t.Fatal("UpdateAt accepted a primary-key change")
	}
	if err := tbl.UpdateAt(n, &Tuple{Keys: []int64{int64(n)}, Features: []float64{0, 0}}); err == nil {
		t.Fatal("UpdateAt accepted an out-of-range row")
	}
}
