package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Database is a catalog of tables backed by heap files in a directory,
// sharing one buffer pool.
type Database struct {
	dir        string
	pool       *BufferPool
	tables     map[string]*Table
	nextFileID int
}

// Options configures a Database.
type Options struct {
	// PoolPages is the buffer pool capacity in pages. Zero disables caching;
	// negative selects the default (256 pages = 2 MiB).
	PoolPages int
}

// DefaultPoolPages is the buffer pool capacity used when Options.PoolPages
// is negative.
const DefaultPoolPages = 256

// Open creates (or reuses) a database directory.
func Open(dir string, opts Options) (*Database, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating database dir: %w", err)
	}
	pages := opts.PoolPages
	if pages < 0 {
		pages = DefaultPoolPages
	}
	db := &Database{
		dir:    dir,
		pool:   NewBufferPool(pages),
		tables: make(map[string]*Table),
	}
	if err := db.loadCatalog(); err != nil {
		return nil, err
	}
	return db, nil
}

// Pool returns the shared buffer pool (for stats inspection).
func (db *Database) Pool() *BufferPool { return db.pool }

// Dir returns the database directory.
func (db *Database) Dir() string { return db.dir }

// CreateTable creates an empty table for the schema. It fails if a table
// with the same name exists.
func (db *Database) CreateTable(s *Schema) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if _, ok := db.tables[s.Name]; ok {
		return nil, fmt.Errorf("storage: table %q already exists", s.Name)
	}
	path := filepath.Join(db.dir, s.Name+".tbl")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: creating table file: %w", err)
	}
	t := &Table{
		schema: s.Clone(s.Name),
		db:     db,
		fileID: db.nextFileID,
		file:   f,
		path:   path,
	}
	db.nextFileID++
	db.tables[s.Name] = t
	if err := db.saveCatalog(); err != nil {
		return nil, err
	}
	return t, nil
}

// Table returns the named table.
func (db *Database) Table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: no table %q", name)
	}
	return t, nil
}

// DropTable removes the table and its file.
func (db *Database) DropTable(name string) error {
	t, ok := db.tables[name]
	if !ok {
		return fmt.Errorf("storage: no table %q", name)
	}
	db.pool.invalidateFile(t.fileID)
	delete(db.tables, name)
	if err := t.file.Close(); err != nil {
		return err
	}
	if err := os.Remove(t.path); err != nil {
		return err
	}
	return db.saveCatalog()
}

// TableNames lists tables in sorted order.
func (db *Database) TableNames() []string {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CheckpointSync makes the whole database durable: every table's
// buffered tail page is flushed and its heap file fsynced, and the
// catalog is rewritten through a synced temp file. After it returns,
// the on-disk directory is a consistent, reopenable image of the
// in-memory state — the precondition for committing a WAL snapshot
// that references these files.
func (db *Database) CheckpointSync() error {
	for _, name := range db.TableNames() {
		if err := db.tables[name].SyncToDisk(); err != nil {
			return err
		}
	}
	return db.saveCatalogSync(true)
}

// Close flushes and closes every table. The database directory (including
// the catalog, so it can be reopened) is left on disk; use os.RemoveAll to
// delete it.
func (db *Database) Close() error {
	var first error
	if err := db.saveCatalog(); err != nil {
		first = err
	}
	for _, t := range db.tables {
		if err := t.Flush(); err != nil && first == nil {
			first = err
		}
		if err := t.file.Close(); err != nil && first == nil {
			first = err
		}
	}
	db.tables = map[string]*Table{}
	return first
}
