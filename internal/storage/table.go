package storage

import (
	"fmt"
	"os"
)

// Table is a heap file of fixed-width records described by a Schema.
// Appends buffer into a tail page that is flushed when full (or on Flush).
// Reads go through the database's shared buffer pool.
type Table struct {
	schema *Schema
	db     *Database
	fileID int
	file   *os.File
	path   string

	numTuples int64
	numPages  int64 // full pages on disk (tail page excluded until flushed)

	tail     *page
	tailUsed int
	flushed  bool // tail page state is on disk

	// Planner statistics (see stats.go): distinct foreign-key values per fk
	// column, maintained at Append/UpdateAt; nil until the first write of
	// this session (reopened tables serve loadedStats until then).
	// statsDirty marks in-memory statistics newer than the catalog's copy,
	// so Flush persists the catalog only when there is something new.
	fkSets      []map[int64]struct{}
	loadedStats *TableStats // catalog-persisted statistics from open time
	statsDirty  bool
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumTuples returns the number of appended tuples.
func (t *Table) NumTuples() int64 { return t.numTuples }

// NumPages returns the number of pages the table occupies, counting a
// partially filled tail page.
func (t *Table) NumPages() int64 {
	if t.tailUsed > 0 {
		return t.numPages + 1
	}
	return t.numPages
}

// Append adds a tuple at the end of the heap file.
func (t *Table) Append(tp *Tuple) error {
	rs := t.schema.RecordSize()
	perPage := t.schema.RecordsPerPage()
	if t.tail == nil {
		t.tail = newPage()
	}
	if err := encodeTuple(t.tail.record(t.tailUsed, rs), t.schema, tp); err != nil {
		return err
	}
	t.tailUsed++
	t.tail.setNumRecords(t.tailUsed)
	t.numTuples++
	t.flushed = false
	if t.tailUsed == perPage {
		if err := t.writePage(t.numPages, t.tail); err != nil {
			return err
		}
		t.numPages++
		t.tail.reset()
		t.tailUsed = 0
		t.flushed = true
	}
	return t.noteKeys(tp.Keys)
}

// Flush writes any buffered partial tail page to disk and persists the
// table's planner statistics into the catalog (see TableStats).
func (t *Table) Flush() error {
	if err := t.flushTail(); err != nil {
		return err
	}
	// Statistics accompany the flush so a crash afterwards still leaves
	// the catalog's copy aligned with the heap — but only when they are
	// newer than the persisted copy: per-row paths (UpdateAt) write pages
	// without rewriting the whole catalog, and the next batch-level Flush
	// or Close folds their statistics in.
	if t.statsDirty {
		return t.db.saveCatalog()
	}
	return nil
}

// flushTail writes the buffered partial tail page, without touching the
// catalog.
func (t *Table) flushTail() error {
	if t.tailUsed == 0 || t.flushed {
		return nil
	}
	if err := t.writePage(t.numPages, t.tail); err != nil {
		return err
	}
	t.flushed = true
	return nil
}

func (t *Table) writePage(pageNo int64, p *page) error {
	if _, err := t.file.WriteAt(p.buf, pageNo*PageSize); err != nil {
		return fmt.Errorf("storage: writing page %d of %q: %w", pageNo, t.schema.Name, err)
	}
	t.db.pool.noteWrite(t.fileID, pageNo)
	return nil
}

// readPage fetches page pageNo through the buffer pool. The unflushed tail
// page is served from memory (it has never been written, so it costs no IO).
func (t *Table) readPage(pageNo int64) (*page, error) {
	if pageNo == t.numPages && t.tailUsed > 0 && !t.flushed {
		return t.tail, nil
	}
	return t.db.pool.get(t.fileID, pageNo, func(p *page) error {
		if _, err := t.file.ReadAt(p.buf, pageNo*PageSize); err != nil {
			return fmt.Errorf("storage: reading page %d of %q: %w", pageNo, t.schema.Name, err)
		}
		return nil
	})
}

// UpdateAt overwrites the tuple at rowID (0-based append order) in place.
// The replacement must keep the stored primary key — heap rows are
// identified by it elsewhere (resident indexes, foreign keys) — so only
// the payload (remaining keys, features, target) may change. The rewritten
// page is flushed to disk and any cached copy is invalidated.
func (t *Table) UpdateAt(rowID int64, tp *Tuple) error {
	if rowID < 0 || rowID >= t.numTuples {
		return fmt.Errorf("storage: row %d out of range [0,%d) in %q", rowID, t.numTuples, t.schema.Name)
	}
	var old Tuple
	if err := t.Get(rowID, &old); err != nil {
		return err
	}
	if len(tp.Keys) == 0 || tp.Keys[0] != old.PrimaryKey() {
		return fmt.Errorf("storage: UpdateAt row %d of %q must keep primary key %d",
			rowID, t.schema.Name, old.PrimaryKey())
	}
	rs := t.schema.RecordSize()
	perPage := int64(t.schema.RecordsPerPage())
	pageNo := rowID / perPage
	slot := int(rowID % perPage)
	if pageNo == t.numPages && t.tailUsed > 0 {
		// The row lives in the buffered tail page: rewrite it there and
		// persist, so readers of the flushed copy see the new bytes.
		if err := encodeTuple(t.tail.record(slot, rs), t.schema, tp); err != nil {
			return err
		}
		t.flushed = false
		if err := t.noteKeys(tp.Keys); err != nil {
			return err
		}
		// Persist the page only; the catalog statistics ride the next
		// batch-level Flush/Close instead of costing a whole-catalog
		// rewrite per updated row.
		return t.flushTail()
	}
	// Full page on disk: read it directly (bypassing the pool so we never
	// mutate a shared cached page), rewrite the record, and write it back.
	// writePage's noteWrite invalidates any cached copy.
	p := newPage()
	if _, err := t.file.ReadAt(p.buf, pageNo*PageSize); err != nil {
		return fmt.Errorf("storage: reading page %d of %q for update: %w", pageNo, t.schema.Name, err)
	}
	if err := encodeTuple(p.record(slot, rs), t.schema, tp); err != nil {
		return err
	}
	if err := t.writePage(pageNo, p); err != nil {
		return err
	}
	// An update may repoint a foreign key; fold the new value into the
	// distinct sets (the old value may stay counted — see TableStats).
	return t.noteKeys(tp.Keys)
}

// Get reads the tuple with the given row id (0-based append order) into dst.
func (t *Table) Get(rowID int64, dst *Tuple) error {
	if rowID < 0 || rowID >= t.numTuples {
		return fmt.Errorf("storage: row %d out of range [0,%d) in %q", rowID, t.numTuples, t.schema.Name)
	}
	perPage := int64(t.schema.RecordsPerPage())
	p, err := t.readPage(rowID / perPage)
	if err != nil {
		return err
	}
	decodeTuple(p.record(int(rowID%perPage), t.schema.RecordSize()), t.schema, dst)
	return nil
}

// Scanner iterates a table in append order.
type Scanner struct {
	t      *Table
	pageNo int64
	slot   int
	page   *page
	tuple  Tuple
	err    error
	served int64
}

// NewScanner returns a scanner positioned before the first tuple.
func (t *Table) NewScanner() *Scanner {
	return &Scanner{t: t}
}

// NewScannerAt returns a scanner positioned before the tuple with the
// given row id (0-based append order), so a scan over a tail range costs
// I/O proportional to that range — the access path of the incremental
// maintenance absorbs (internal/stream). rowID may equal NumTuples, which
// yields an immediately exhausted scanner.
func (t *Table) NewScannerAt(rowID int64) (*Scanner, error) {
	if rowID < 0 || rowID > t.numTuples {
		return nil, fmt.Errorf("storage: scan start %d out of range [0,%d] in %q", rowID, t.numTuples, t.schema.Name)
	}
	perPage := int64(t.schema.RecordsPerPage())
	return &Scanner{
		t:      t,
		pageNo: rowID / perPage,
		slot:   int(rowID % perPage),
		served: rowID,
	}, nil
}

// Next advances to the next tuple; it returns false at the end of the table
// or on error (check Err).
func (s *Scanner) Next() bool {
	if s.err != nil || s.served >= s.t.numTuples {
		return false
	}
	if s.page == nil || s.slot >= s.page.numRecords() {
		if s.page != nil {
			s.pageNo++
			s.slot = 0
		}
		s.page, s.err = s.t.readPage(s.pageNo)
		if s.err != nil {
			return false
		}
	}
	decodeTuple(s.page.record(s.slot, s.t.schema.RecordSize()), s.t.schema, &s.tuple)
	s.slot++
	s.served++
	return true
}

// Tuple returns the current tuple. The returned pointer is reused across
// Next calls; Clone it to retain.
func (s *Scanner) Tuple() *Tuple { return &s.tuple }

// Err returns the first error encountered by the scanner.
func (s *Scanner) Err() error { return s.err }

// Close releases resources (no-op today; kept for interface stability).
func (s *Scanner) Close() error { return nil }

// Path returns the table's backing heap-file path (checkpointing copies
// or truncates heap files at this granularity; see internal/stream).
func (t *Table) Path() string { return t.path }

// PathForTest exposes the backing file path (testing only; prefer Path).
func (t *Table) PathForTest() string { return t.Path() }

// TailPageState reports the heap-file geometry a checkpoint must
// record to restore this table exactly: the number of full pages, and
// a copy of the buffered partial tail page (nil when the tail is
// empty). Appends after the checkpoint rewrite the tail page in place
// — growing its record count without changing which pages are full —
// so a restore truncates the file to fullPages*PageSize and re-appends
// the saved tail page rather than trusting the file size.
func (t *Table) TailPageState() (fullPages int64, tailPage []byte) {
	if t.tailUsed == 0 {
		return t.numPages, nil
	}
	buf := make([]byte, PageSize)
	copy(buf, t.tail.buf)
	return t.numPages, buf
}

// SyncToDisk flushes the buffered tail page and fsyncs the heap file,
// making every appended tuple durable. Part of the checkpoint protocol
// (Database.CheckpointSync).
func (t *Table) SyncToDisk() error {
	if err := t.flushTail(); err != nil {
		return err
	}
	if err := t.file.Sync(); err != nil {
		return fmt.Errorf("storage: syncing %q: %w", t.schema.Name, err)
	}
	return nil
}
