package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// IOStats aggregates page traffic counters. LogicalReads counts every page
// request; PhysicalReads counts those that missed the pool and hit the file.
// The paper's analytic cost formulas (§V-A) are stated in logical page reads
// of the block-nested-loops join, so both views are kept.
type IOStats struct {
	LogicalReads  int64
	PhysicalReads int64
	PageWrites    int64
}

// Sub returns s - o, useful for measuring a window of activity.
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{
		LogicalReads:  s.LogicalReads - o.LogicalReads,
		PhysicalReads: s.PhysicalReads - o.PhysicalReads,
		PageWrites:    s.PageWrites - o.PageWrites,
	}
}

func (s IOStats) String() string {
	return fmt.Sprintf("logical=%d physical=%d writes=%d", s.LogicalReads, s.PhysicalReads, s.PageWrites)
}

type poolKey struct {
	fileID int
	pageNo int64
}

type poolEntry struct {
	key  poolKey
	page *page
}

// BufferPool is a shared LRU cache of pages keyed by (file, page number).
// It is safe for concurrent use.
type BufferPool struct {
	mu       sync.Mutex
	capacity int
	entries  map[poolKey]*list.Element
	lru      *list.List // front = most recently used
	stats    IOStats
}

// NewBufferPool returns a pool holding at most capacity pages. A capacity of
// zero disables caching entirely (every logical read is physical).
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 0 {
		panic(fmt.Sprintf("storage: negative buffer pool capacity %d", capacity))
	}
	return &BufferPool{
		capacity: capacity,
		entries:  make(map[poolKey]*list.Element),
		lru:      list.New(),
	}
}

// Capacity returns the pool's page capacity.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Stats returns a snapshot of the pool counters.
func (bp *BufferPool) Stats() IOStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the counters.
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = IOStats{}
}

// get returns the page (fileID, pageNo), loading it with load on a miss.
// The returned page must be treated as read-only by callers.
func (bp *BufferPool) get(fileID int, pageNo int64, load func(*page) error) (*page, error) {
	bp.mu.Lock()
	bp.stats.LogicalReads++
	key := poolKey{fileID, pageNo}
	if el, ok := bp.entries[key]; ok {
		bp.lru.MoveToFront(el)
		p := el.Value.(*poolEntry).page
		bp.mu.Unlock()
		return p, nil
	}
	bp.stats.PhysicalReads++
	bp.mu.Unlock()

	p := newPage()
	if err := load(p); err != nil {
		return nil, err
	}

	bp.mu.Lock()
	defer bp.mu.Unlock()
	if bp.capacity == 0 {
		return p, nil
	}
	if el, ok := bp.entries[key]; ok {
		// Raced with another loader; use theirs.
		bp.lru.MoveToFront(el)
		return el.Value.(*poolEntry).page, nil
	}
	for bp.lru.Len() >= bp.capacity {
		back := bp.lru.Back()
		bp.lru.Remove(back)
		delete(bp.entries, back.Value.(*poolEntry).key)
	}
	bp.entries[key] = bp.lru.PushFront(&poolEntry{key: key, page: p})
	return p, nil
}

// noteWrite records a physical page write and invalidates any cached copy.
func (bp *BufferPool) noteWrite(fileID int, pageNo int64) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats.PageWrites++
	key := poolKey{fileID, pageNo}
	if el, ok := bp.entries[key]; ok {
		bp.lru.Remove(el)
		delete(bp.entries, key)
	}
}

// invalidateFile drops every cached page of the file.
func (bp *BufferPool) invalidateFile(fileID int) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for el := bp.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*poolEntry)
		if e.key.fileID == fileID {
			bp.lru.Remove(el)
			delete(bp.entries, e.key)
		}
		el = next
	}
}
