package storage

import "encoding/binary"

const (
	// PageSize is the size of one disk page in bytes.
	PageSize = 8192
	// pageHeaderSize holds the record count (uint16) plus padding.
	pageHeaderSize = 4
	// PageDataSize is the usable payload capacity of a page.
	PageDataSize = PageSize - pageHeaderSize
)

// page wraps a PageSize byte buffer holding fixed-width records.
type page struct {
	buf []byte
}

func newPage() *page {
	return &page{buf: make([]byte, PageSize)}
}

func (p *page) numRecords() int {
	return int(binary.LittleEndian.Uint16(p.buf[0:2]))
}

func (p *page) setNumRecords(n int) {
	binary.LittleEndian.PutUint16(p.buf[0:2], uint16(n))
}

// record returns the byte slice of record i given the record size.
func (p *page) record(i, recordSize int) []byte {
	off := pageHeaderSize + i*recordSize
	return p.buf[off : off+recordSize]
}

func (p *page) reset() {
	for i := range p.buf {
		p.buf[i] = 0
	}
}
