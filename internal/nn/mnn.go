package nn

import (
	"fmt"
	"time"

	"factorml/internal/join"
	"factorml/internal/storage"
)

// TrainM is the baseline M-NN: materialize T on disk, then train reading T
// once per epoch. Block-mode mini-batch boundaries are reconstructed from
// the materializer's per-block tuple counts, so the parameter trajectory is
// identical to S-NN/F-NN. The temporary table is dropped afterwards.
func TrainM(db *storage.Database, spec *join.Spec, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if !spec.S.Schema().HasTarget {
		return nil, fmt.Errorf("nn: fact table %q has no target column", spec.S.Schema().Name)
	}
	if cfg.ShuffleSeed != 0 {
		return nil, fmt.Errorf("nn: M-NN reads a fixed materialized T and does not support ShuffleSeed; use the streaming or factorized trainer")
	}
	start := time.Now()
	io0 := db.Pool().Stats()

	tName := fmt.Sprintf("T_%s_mnn", spec.S.Schema().Name)
	tTbl, counts, err := join.Materialize(db, spec, tName)
	if err != nil {
		return nil, err
	}
	defer db.DropTable(tName) //nolint:errcheck // best-effort temp cleanup

	pass := func(onTuple func(x []float64, y float64) error, onBlockEnd func() error) error {
		sc := tTbl.NewScanner()
		blk := 0
		var inBlock int64
		for sc.Next() {
			tp := sc.Tuple()
			if err := onTuple(tp.Features, tp.Target); err != nil {
				return err
			}
			inBlock++
			for blk < len(counts) && inBlock == counts[blk] {
				if err := onBlockEnd(); err != nil {
					return err
				}
				inBlock = 0
				blk++
				// Skip over empty blocks (possible when a block's keys match
				// no fact tuples).
				for blk < len(counts) && counts[blk] == 0 {
					if err := onBlockEnd(); err != nil {
						return err
					}
					blk++
				}
			}
		}
		return sc.Err()
	}

	net, err := initNetwork(cfg, spec.JoinedWidth())
	if err != nil {
		return nil, err
	}
	res := &Result{Net: net}
	if err := trainDense(pass, int(tTbl.NumTuples()), cfg, net, &res.Stats); err != nil {
		return nil, err
	}
	res.Stats.IO = db.Pool().Stats().Sub(io0)
	res.Stats.TrainTime = time.Since(start)
	return res, nil
}
