package nn

import (
	"fmt"
	"time"

	"factorml/internal/factor"
	"factorml/internal/join"
	"factorml/internal/storage"
)

// TrainM is the baseline M-NN: materialize T on disk
// (factor.MaterializedSource), then train reading T once per epoch.
// Block-mode mini-batch boundaries are reconstructed from the
// materializer's per-block tuple counts, so the parameter trajectory is
// identical to S-NN/F-NN. The temporary table is dropped afterwards.
func TrainM(db *storage.Database, spec *join.Spec, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if !spec.S.Schema().HasTarget {
		return nil, fmt.Errorf("nn: fact table %q has no target column", spec.S.Schema().Name)
	}
	if cfg.ShuffleSeed != 0 {
		return nil, fmt.Errorf("nn: M-NN reads a fixed materialized T and does not support ShuffleSeed; use the streaming or factorized trainer")
	}
	start := time.Now()
	io0 := db.Pool().Stats()

	src, err := factor.NewMaterializedSource(db, spec, fmt.Sprintf("T_%s_mnn", spec.S.Schema().Name))
	if err != nil {
		return nil, err
	}
	defer src.Close() //nolint:errcheck // best-effort temp cleanup

	net, err := initNetwork(cfg, spec.JoinedWidth())
	if err != nil {
		return nil, err
	}
	res := &Result{Net: net}
	if err := trainDense(src.ScanGroups, src.NumRows(), cfg, net, &res.Stats); err != nil {
		return nil, err
	}
	res.Stats.IO = db.Pool().Stats().Sub(io0)
	res.Stats.TrainTime = time.Since(start)
	return res, nil
}
