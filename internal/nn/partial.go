package nn

import (
	"fmt"

	"factorml/internal/linalg"
)

// This file exports the per-relation partial computations of the factorized
// layer-1 forward pass (§VI-A1) for use outside the trainers — most notably
// by the serving engine (internal/serve), which caches PartialPreAct results
// per dimension tuple and completes each fact tuple's forward pass with
// ForwardFactorized. The accumulation order is fixed (dimension parts in
// relation order, then the layer-1 bias, then the fact part), so the output
// for a given tuple is bit-identical regardless of worker count or cache
// state.

// HiddenWidth returns the width of the first hidden layer (Sizes[1]), the
// length of every layer-1 partial pre-activation.
func (n *Network) HiddenWidth() int { return n.Sizes[1] }

// PartialPreAct computes the layer-1 pre-activation contribution of one
// relation part: dst = W0[:, off:off+len(x)]·x, where x is the part's
// feature sub-vector and off its column offset within the joined feature
// vector. dst must have length HiddenWidth(). This is the quantity the
// factorized trainers cache once per dimension tuple (the t_m of §VI-A1);
// it is a pure function of (network, off, x).
func (n *Network) PartialPreAct(dst []float64, off int, x []float64) {
	if len(dst) != n.Sizes[1] {
		panic(fmt.Sprintf("nn: partial pre-activation length %d, want %d", len(dst), n.Sizes[1]))
	}
	linalg.MatVecRange(dst, n.W[0], off, x)
}

// ForwardScratch holds one goroutine's activation buffers for
// ForwardFactorized, so the serving hot path performs no per-row
// allocation. Obtain one per worker via NewForwardScratch.
type ForwardScratch struct {
	a [][]float64 // a[l] has length Sizes[l+1]
}

// NewForwardScratch allocates scratch sized for this network.
func (n *Network) NewForwardScratch() *ForwardScratch {
	fs := &ForwardScratch{}
	for l := 0; l < n.Layers(); l++ {
		fs.a = append(fs.a, make([]float64, n.Sizes[l+1]))
	}
	return fs
}

// ForwardFactorized completes a forward pass from cached per-relation
// partials: parts holds one PartialPreAct result per dimension relation (in
// relation order) and xs is the fact tuple's feature sub-vector at column
// offset 0. It mirrors the factorized trainers' accumulation order —
// Σ parts, + b⁰, + W0_S·x_S — then runs the dense upper layers in fs's
// buffers, and returns the scalar network output. The result is exact: it
// equals Predict over the assembled joined vector up to floating-point
// summation order.
func (n *Network) ForwardFactorized(fs *ForwardScratch, xs []float64, parts [][]float64) float64 {
	if len(fs.a) != n.Layers() {
		panic(fmt.Sprintf("nn: scratch has %d layers, network %d", len(fs.a), n.Layers()))
	}
	a0 := fs.a[0]
	if len(parts) == 0 {
		copy(a0, n.B[0])
	} else {
		linalg.VecAdd(a0, parts[0], n.B[0])
		for _, t := range parts[1:] {
			linalg.VecAdd(a0, a0, t)
		}
	}
	linalg.MatVecRangeAdd(a0, n.W[0], 0, xs)
	if n.Layers() == 1 {
		return a0[0] // single-layer network: linear output, no activation
	}
	n.Act.Apply(a0, a0)
	cur := a0
	for l := 1; l < n.Layers(); l++ {
		out := fs.a[l]
		linalg.MatVec(out, n.W[l], cur)
		linalg.VecAdd(out, out, n.B[l])
		if l < n.Layers()-1 {
			n.Act.Apply(out, out)
		}
		cur = out
	}
	return cur[0]
}
