// Package nn implements feed-forward neural network training (backprop,
// squared error) over normalized relations, in the paper's three flavours:
//
//   - TrainM (M-NN): materialize T = S ⋈ R1 ⋈ … on disk, train reading T.
//   - TrainS (S-NN): identical training, streaming the join per pass.
//   - TrainF (F-NN): the factorized trainer of §VI. In the first layer's
//     forward pass, the partial pre-activation W_R·x_R (+ share of bias) of
//     each dimension tuple is computed once per parameter state and reused
//     for every matching fact tuple. The backward pass reads features
//     directly from the base relations (the I/O saving of §VI-A3); per the
//     paper's Eq. 28-29 analysis, it performs the same multiplications as
//     the dense path unless the GroupedGradient extension is enabled.
//
// Factorization stops after the first layer: the paper shows (§VI-A2) that
// sharing across higher layers requires an additive activation and costs
// more operations than it saves even then. The ShareLayer2 option
// implements that scheme anyway — restricted to the Identity activation,
// where it is exact — so the claim can be demonstrated empirically with
// the package's operation counters (see BenchmarkAblationLayer2Sharing).
//
// Two batching regimes are supported, both producing identical parameter
// trajectories across M/S/F: Epoch (one gradient step per full pass) and
// Block (one step per R1 block of the join — M-NN reconstructs the block
// boundaries of T from the materializer's per-block counts).
package nn
