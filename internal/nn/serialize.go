package nn

import (
	"encoding/json"
	"fmt"
	"io"

	"factorml/internal/linalg"
)

// networkJSON is the stable on-disk representation of a trained network.
type networkJSON struct {
	Version int         `json:"version"`
	Sizes   []int       `json:"sizes"`
	Act     int         `json:"activation"`
	W       [][]float64 `json:"weights"` // row-major Sizes[l+1]×Sizes[l]
	B       [][]float64 `json:"biases"`
}

const networkVersion = 1

// Save writes the network as JSON.
func (n *Network) Save(w io.Writer) error {
	out := networkJSON{Version: networkVersion, Sizes: n.Sizes, Act: int(n.Act), B: n.B}
	for _, wm := range n.W {
		out.W = append(out.W, wm.Data())
	}
	return json.NewEncoder(w).Encode(out)
}

// LoadNetwork reads a network written by Save, validating its shape.
func LoadNetwork(r io.Reader) (*Network, error) {
	var in networkJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("nn: decoding network: %w", err)
	}
	if in.Version != networkVersion {
		return nil, fmt.Errorf("nn: unsupported network version %d", in.Version)
	}
	if len(in.Sizes) < 2 {
		return nil, fmt.Errorf("nn: serialized network has %d layer sizes", len(in.Sizes))
	}
	layers := len(in.Sizes) - 1
	if len(in.W) != layers || len(in.B) != layers {
		return nil, fmt.Errorf("nn: layer count mismatch: sizes imply %d, got %d/%d", layers, len(in.W), len(in.B))
	}
	if in.Act < int(Sigmoid) || in.Act > int(Identity) {
		return nil, fmt.Errorf("nn: unknown activation code %d", in.Act)
	}
	net := &Network{Sizes: in.Sizes, Act: Activation(in.Act), B: in.B}
	for l := 0; l < layers; l++ {
		rows, cols := in.Sizes[l+1], in.Sizes[l]
		if len(in.W[l]) != rows*cols {
			return nil, fmt.Errorf("nn: layer %d weights have %d entries, want %d", l, len(in.W[l]), rows*cols)
		}
		if len(in.B[l]) != rows {
			return nil, fmt.Errorf("nn: layer %d biases have %d entries, want %d", l, len(in.B[l]), rows)
		}
		net.W = append(net.W, linalg.NewDenseData(rows, cols, in.W[l]))
	}
	return net, nil
}
