package nn

import (
	"fmt"
	"math"

	"factorml/internal/join"
)

// Evaluation summarizes regression quality over a dataset.
type Evaluation struct {
	N    int64
	MSE  float64
	RMSE float64
	// R2 is 1 − MSE/Var(y); ≤ 0 means no better than the mean predictor.
	R2 float64
}

// Evaluate streams the join and scores the network against the targets,
// without materializing.
func Evaluate(net *Network, spec *join.Spec) (*Evaluation, error) {
	if !spec.S.Schema().HasTarget {
		return nil, fmt.Errorf("nn: fact table %q has no target column", spec.S.Schema().Name)
	}
	var n, sse, sumY, sumY2 float64
	err := join.Stream(spec, func(_ int64, x []float64, y float64) error {
		p := net.Predict(x)
		sse += (p - y) * (p - y)
		sumY += y
		sumY2 += y * y
		n++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("nn: no rows to evaluate")
	}
	mse := sse / n
	varY := sumY2/n - (sumY/n)*(sumY/n)
	r2 := 0.0
	if varY > 0 {
		r2 = 1 - mse/varY
	}
	return &Evaluation{N: int64(n), MSE: mse, RMSE: math.Sqrt(mse), R2: r2}, nil
}
