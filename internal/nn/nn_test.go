package nn

import (
	"math"
	"testing"

	"factorml/internal/data"
	"factorml/internal/join"
	"factorml/internal/storage"
)

func openDB(t *testing.T) *storage.Database {
	t.Helper()
	db, err := storage.Open(t.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func synthBinary(t *testing.T, db *storage.Database, nS, nR, dS, dR int) *join.Spec {
	t.Helper()
	spec, err := data.Generate(db, "t", data.SynthConfig{
		NS: nS, NR: []int{nR}, DS: dS, DR: []int{dR}, Seed: 21, WithTarget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func synthMulti(t *testing.T, db *storage.Database, nS int, nR []int, dS int, dR []int) *join.Spec {
	t.Helper()
	spec, err := data.Generate(db, "t", data.SynthConfig{
		NS: nS, NR: nR, DS: dS, DR: dR, Seed: 23, WithTarget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func trainAll3(t *testing.T, db *storage.Database, spec *join.Spec, cfg Config) (m, s, f *Result) {
	t.Helper()
	var err error
	if m, err = TrainM(db, spec, cfg); err != nil {
		t.Fatal(err)
	}
	if s, err = TrainS(db, spec, cfg); err != nil {
		t.Fatal(err)
	}
	if f, err = TrainF(db, spec, cfg); err != nil {
		t.Fatal(err)
	}
	return m, s, f
}

// Headline invariant: the three trainers produce the same network.
func TestExactnessBinaryEpoch(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 400, 25, 3, 4)
	for _, act := range []Activation{Sigmoid, Tanh, ReLU} {
		cfg := Config{Hidden: []int{8}, Act: act, Epochs: 5, LearningRate: 0.1}
		m, s, f := trainAll3(t, db, spec, cfg)
		if d := m.Net.MaxParamDiff(s.Net); d > 1e-9 {
			t.Fatalf("%s: M vs S param diff %v", act, d)
		}
		if d := s.Net.MaxParamDiff(f.Net); d > 1e-7 {
			t.Fatalf("%s: S vs F param diff %v", act, d)
		}
		// Loss traces must coincide.
		for i := range m.Stats.Loss {
			if math.Abs(m.Stats.Loss[i]-f.Stats.Loss[i]) > 1e-7*(1+math.Abs(m.Stats.Loss[i])) {
				t.Fatalf("%s: epoch %d loss %v vs %v", act, i, m.Stats.Loss[i], f.Stats.Loss[i])
			}
		}
	}
}

func TestExactnessBinaryBlockMode(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 700, 600, 2, 1) // forces multiple BNL blocks
	spec.BlockPages = 1
	cfg := Config{Hidden: []int{6}, Act: Sigmoid, Epochs: 3, LearningRate: 0.1, Mode: Block}
	m, s, f := trainAll3(t, db, spec, cfg)
	if d := m.Net.MaxParamDiff(s.Net); d > 1e-9 {
		t.Fatalf("M vs S param diff %v (block mode)", d)
	}
	if d := s.Net.MaxParamDiff(f.Net); d > 1e-7 {
		t.Fatalf("S vs F param diff %v (block mode)", d)
	}
}

func TestExactnessMultiway(t *testing.T) {
	db := openDB(t)
	spec := synthMulti(t, db, 400, []int{20, 8}, 2, []int{3, 2})
	cfg := Config{Hidden: []int{7}, Act: Tanh, Epochs: 4, LearningRate: 0.05}
	m, s, f := trainAll3(t, db, spec, cfg)
	if d := m.Net.MaxParamDiff(s.Net); d > 1e-9 {
		t.Fatalf("M vs S param diff %v", d)
	}
	if d := s.Net.MaxParamDiff(f.Net); d > 1e-7 {
		t.Fatalf("S vs F param diff %v", d)
	}
}

func TestGroupedGradientExact(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 300, 15, 2, 3)
	base := Config{Hidden: []int{5}, Act: Sigmoid, Epochs: 4, LearningRate: 0.1}
	f1, err := TrainF(db, spec, base)
	if err != nil {
		t.Fatal(err)
	}
	grouped := base
	grouped.GroupedGradient = true
	f2, err := TrainF(db, spec, grouped)
	if err != nil {
		t.Fatal(err)
	}
	if d := f1.Net.MaxParamDiff(f2.Net); d > 1e-8 {
		t.Fatalf("grouped gradient diverged: %v", d)
	}
	// Grouping must reduce layer-1 gradient multiplications.
	if f2.Stats.Ops.Mul >= f1.Stats.Ops.Mul {
		t.Fatalf("grouped gradient ops %d not below per-tuple %d", f2.Stats.Ops.Mul, f1.Stats.Ops.Mul)
	}
}

func TestShareLayer2ExactAndCostsMore(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 300, 10, 2, 3)
	base := Config{Hidden: []int{6, 5}, Act: Identity, Epochs: 3, LearningRate: 0.01}
	f1, err := TrainF(db, spec, base)
	if err != nil {
		t.Fatal(err)
	}
	shared := base
	shared.ShareLayer2 = true
	f2, err := TrainF(db, spec, shared)
	if err != nil {
		t.Fatal(err)
	}
	// Exact for the additive activation …
	if d := f1.Net.MaxParamDiff(f2.Net); d > 1e-7 {
		t.Fatalf("layer-2 sharing diverged: %v", d)
	}
	// … but strictly more expensive (the paper's §VI-A2 conclusion).
	if f2.Stats.Ops.Mul <= f1.Stats.Ops.Mul {
		t.Fatalf("layer-2 sharing mults %d not above plain F-NN %d", f2.Stats.Ops.Mul, f1.Stats.Ops.Mul)
	}
	// And it must still agree with the dense baseline.
	s, err := TrainS(db, spec, base)
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Net.MaxParamDiff(f2.Net); d > 1e-7 {
		t.Fatalf("shared F-NN vs S-NN diff %v", d)
	}
}

func TestShareLayer2RequiresAdditive(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 60, 5, 1, 1)
	cfg := Config{Hidden: []int{4, 3}, Act: Sigmoid, Epochs: 1, ShareLayer2: true}
	if _, err := TrainF(db, spec, cfg); err == nil {
		t.Fatal("ShareLayer2 with sigmoid should be rejected")
	}
	cfg = Config{Hidden: []int{4}, Act: Identity, Epochs: 1, ShareLayer2: true}
	if _, err := TrainF(db, spec, cfg); err == nil {
		t.Fatal("ShareLayer2 with one hidden layer should be rejected")
	}
}

// F-NN must save forward-pass multiplications when redundancy is present.
func TestFactorizedSavesOps(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 1000, 10, 3, 12)
	cfg := Config{Hidden: []int{16}, Act: ReLU, Epochs: 2, LearningRate: 0.05}
	s, err := TrainS(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats.Ops.Mul >= s.Stats.Ops.Mul {
		t.Fatalf("F-NN mults %d not below S-NN %d", f.Stats.Ops.Mul, s.Stats.Ops.Mul)
	}
}

// §VI-A1 closed form: the dense layer-1 forward spends nh·d mults per tuple;
// the factorized one spends nh·dS per tuple plus nh·dR per dimension tuple.
func TestForwardSavingMatchesClosedForm(t *testing.T) {
	db := openDB(t)
	nS, nR, dS, dR, nh := 500, 20, 3, 6, 8
	spec := synthBinary(t, db, nS, nR, dS, dR)
	cfg := Config{Hidden: []int{nh}, Act: ReLU, Epochs: 1, LearningRate: 0.05}
	s, err := TrainS(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(nS)*int64(nh*dR) - int64(nR)*int64(nh*dR)
	got := s.Stats.Ops.Mul - f.Stats.Ops.Mul
	if got != want {
		t.Fatalf("forward saving = %d mults, closed form = %d", got, want)
	}
}

func TestLossDecreases(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 600, 30, 4, 4)
	res, err := TrainF(db, spec, Config{Hidden: []int{12}, Act: Tanh, Epochs: 30, LearningRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Stats.Loss[0], res.Stats.FinalLoss()
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestPredictLearnsSignal(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 1500, 20, 4, 2)
	res, err := TrainF(db, spec, Config{Hidden: []int{16}, Act: Tanh, Epochs: 120, LearningRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Compare model MSE against the trivial mean predictor.
	var sumY, sumY2, n float64
	var sse float64
	err = join.Stream(spec, func(_ int64, x []float64, y float64) error {
		p := res.Net.Predict(x)
		sse += (p - y) * (p - y)
		sumY += y
		sumY2 += y * y
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	varY := sumY2/n - (sumY/n)*(sumY/n)
	if sse/n > 0.9*varY {
		t.Fatalf("model MSE %v worse than 0.9·Var(y)=%v — did not learn", sse/n, 0.9*varY)
	}
}

func TestIOProfiles(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 400, 20, 2, 2)
	cfg := Config{Hidden: []int{4}, Act: Sigmoid, Epochs: 2, LearningRate: 0.1}
	m, err := TrainM(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats.IO.PageWrites == 0 {
		t.Fatal("M-NN should materialize pages")
	}
	f, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats.IO.PageWrites != 0 {
		t.Fatalf("F-NN wrote %d pages", f.Stats.IO.PageWrites)
	}
	// F reads fewer logical pages than M (M re-reads the wide T).
	if f.Stats.IO.LogicalReads >= m.Stats.IO.LogicalReads {
		t.Fatalf("F-NN logical reads %d not below M-NN %d", f.Stats.IO.LogicalReads, m.Stats.IO.LogicalReads)
	}
}

func TestConfigValidation(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 50, 5, 1, 1)
	if _, err := TrainF(db, spec, Config{Hidden: []int{0}}); err == nil {
		t.Fatal("hidden size 0 should fail")
	}
	if _, err := TrainF(db, spec, Config{LearningRate: -1}); err == nil {
		t.Fatal("negative learning rate should fail")
	}
	// Missing target.
	spec2, err := data.Generate(db, "nt", data.SynthConfig{NS: 20, NR: []int{4}, DS: 1, DR: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainF(db, spec2, Config{}); err == nil {
		t.Fatal("spec without target should fail")
	}
	if _, err := TrainM(db, spec2, Config{}); err == nil {
		t.Fatal("M without target should fail")
	}
	if _, err := TrainS(db, spec2, Config{}); err == nil {
		t.Fatal("S without target should fail")
	}
}

func TestNetworkBasics(t *testing.T) {
	if _, err := NewNetwork([]int{3}, Sigmoid, 1); err == nil {
		t.Fatal("too few sizes should fail")
	}
	if _, err := NewNetwork([]int{3, 2}, Sigmoid, 1); err == nil {
		t.Fatal("output size != 1 should fail")
	}
	if _, err := NewNetwork([]int{3, 0, 1}, Sigmoid, 1); err == nil {
		t.Fatal("zero layer size should fail")
	}
	n1, err := NewNetwork([]int{3, 4, 1}, Sigmoid, 7)
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := NewNetwork([]int{3, 4, 1}, Sigmoid, 7)
	if d := n1.MaxParamDiff(n2); d != 0 {
		t.Fatalf("same-seed networks differ by %v", d)
	}
	n3, _ := NewNetwork([]int{3, 4, 1}, Sigmoid, 8)
	if d := n1.MaxParamDiff(n3); d == 0 {
		t.Fatal("different-seed networks identical")
	}
	c := n1.Clone()
	c.B[0][0] += 1
	if n1.B[0][0] == c.B[0][0] {
		t.Fatal("Clone aliases original")
	}
	if n1.InputDim() != 3 || n1.Layers() != 2 {
		t.Fatalf("dims: %d layers %d", n1.InputDim(), n1.Layers())
	}
}

func TestActivations(t *testing.T) {
	v := []float64{-2, 0, 3}
	out := make([]float64, 3)
	Sigmoid.Apply(out, v)
	if math.Abs(out[1]-0.5) > 1e-12 || out[0] >= 0.5 || out[2] <= 0.5 {
		t.Fatalf("sigmoid: %v", out)
	}
	ReLU.Apply(out, v)
	if out[0] != 0 || out[1] != 0 || out[2] != 3 {
		t.Fatalf("relu: %v", out)
	}
	Tanh.Apply(out, v)
	if math.Abs(out[2]-math.Tanh(3)) > 1e-12 {
		t.Fatalf("tanh: %v", out)
	}
	Identity.Apply(out, v)
	if out[0] != -2 {
		t.Fatalf("identity: %v", out)
	}
	if !Identity.Additive() || Sigmoid.Additive() || Tanh.Additive() || ReLU.Additive() {
		t.Fatal("additivity flags wrong")
	}
	for _, a := range []Activation{Sigmoid, Tanh, ReLU, Identity} {
		if a.String() == "" {
			t.Fatal("empty activation name")
		}
	}
}

// Numerical gradient check on a tiny network: backprop must match finite
// differences.
func TestBackpropGradientCheck(t *testing.T) {
	net, err := NewNetwork([]int{3, 4, 1}, Tanh, 5)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.7, 1.2}
	y := 0.4

	var stats Stats
	w := newWorkspace(net, &stats.Ops)
	w.zeroGrads()
	o := w.forwardDense(x)
	w.backward(o, y)
	w.accumulateInputGrad(x)

	const eps = 1e-6
	lossAt := func() float64 {
		p := net.Predict(x)
		return 0.5 * (p - y) * (p - y)
	}
	for l := 0; l < net.Layers(); l++ {
		r, c := net.W[l].Dims()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				orig := net.W[l].At(i, j)
				net.W[l].Set(i, j, orig+eps)
				up := lossAt()
				net.W[l].Set(i, j, orig-eps)
				down := lossAt()
				net.W[l].Set(i, j, orig)
				numeric := (up - down) / (2 * eps)
				analytic := w.gW[l].At(i, j)
				if math.Abs(numeric-analytic) > 1e-5*(1+math.Abs(numeric)) {
					t.Fatalf("W[%d][%d,%d]: analytic %v vs numeric %v", l, i, j, analytic, numeric)
				}
			}
		}
		for i := 0; i < r; i++ {
			orig := net.B[l][i]
			net.B[l][i] = orig + eps
			up := lossAt()
			net.B[l][i] = orig - eps
			down := lossAt()
			net.B[l][i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-w.gB[l][i]) > 1e-5*(1+math.Abs(numeric)) {
				t.Fatalf("B[%d][%d]: analytic %v vs numeric %v", l, i, w.gB[l][i], numeric)
			}
		}
	}
}

func TestDeepNetworkExactness(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 200, 10, 2, 2)
	cfg := Config{Hidden: []int{6, 5, 4}, Act: Sigmoid, Epochs: 3, LearningRate: 0.1}
	s, err := TrainS(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Net.MaxParamDiff(f.Net); d > 1e-7 {
		t.Fatalf("deep S vs F param diff %v", d)
	}
}

func TestStatsFinalLoss(t *testing.T) {
	var s Stats
	if !math.IsInf(s.FinalLoss(), 1) {
		t.Fatal("empty FinalLoss should be +Inf")
	}
}

// SGD via per-epoch R-key permutation (§VI): S-NN and F-NN with the same
// shuffle seed must follow identical trajectories; different seeds (or no
// shuffle) must differ when batches change per epoch.
func TestShuffledSGDExactSvsF(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 800, 700, 2, 1) // multiple BNL blocks
	spec.BlockPages = 1
	cfg := Config{Hidden: []int{5}, Act: Sigmoid, Epochs: 3, LearningRate: 0.1,
		Mode: Block, ShuffleSeed: 42}
	s, err := TrainS(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Net.MaxParamDiff(f.Net); d > 1e-7 {
		t.Fatalf("S vs F diverged under shuffled SGD: %v", d)
	}
	// A different seed changes the trajectory.
	cfg2 := cfg
	cfg2.ShuffleSeed = 43
	f2, err := TrainF(db, spec, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Net.MaxParamDiff(f2.Net); d == 0 {
		t.Fatal("different shuffle seeds produced identical networks")
	}
	// No shuffle also differs.
	cfg3 := cfg
	cfg3.ShuffleSeed = 0
	f3, err := TrainF(db, spec, cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Net.MaxParamDiff(f3.Net); d == 0 {
		t.Fatal("shuffled and unshuffled training produced identical networks")
	}
}

func TestShuffleRejectedByMNN(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 50, 5, 1, 1)
	cfg := Config{Hidden: []int{3}, Epochs: 1, ShuffleSeed: 7}
	if _, err := TrainM(db, spec, cfg); err == nil {
		t.Fatal("M-NN must reject ShuffleSeed")
	}
}

// Shuffled training still visits every joined tuple exactly once per epoch
// (same loss denominator, same data), so the loss trace stays finite and
// the model still learns.
func TestShuffledSGDStillLearns(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 600, 550, 2, 1)
	spec.BlockPages = 1
	cfg := Config{Hidden: []int{8}, Act: Tanh, Epochs: 20, LearningRate: 0.2,
		Mode: Block, ShuffleSeed: 9}
	res, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FinalLoss() >= res.Stats.Loss[0] {
		t.Fatalf("shuffled SGD loss did not decrease: %v -> %v", res.Stats.Loss[0], res.Stats.FinalLoss())
	}
}

func TestEvaluate(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 800, 20, 4, 2)
	res, err := TrainF(db, spec, Config{Hidden: []int{12}, Act: Tanh, Epochs: 80, LearningRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(res.Net, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ev.N != 800 {
		t.Fatalf("Evaluate N = %d", ev.N)
	}
	if ev.RMSE != math.Sqrt(ev.MSE) {
		t.Fatal("RMSE inconsistent with MSE")
	}
	if ev.R2 <= 0 {
		t.Fatalf("trained model R2 = %v, want > 0", ev.R2)
	}
	// Evaluation must fail without a target.
	spec2, err := data.Generate(db, "nt", data.SynthConfig{NS: 10, NR: []int{2}, DS: 1, DR: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	net, _ := NewNetwork([]int{2, 3, 1}, Sigmoid, 1)
	if _, err := Evaluate(net, spec2); err == nil {
		t.Fatal("Evaluate without target should fail")
	}
}
