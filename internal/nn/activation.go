package nn

import (
	"fmt"
	"math"
)

// Activation selects the hidden-layer nonlinearity.
type Activation int

const (
	// Sigmoid is σ(a) = 1/(1+e^{-a}).
	Sigmoid Activation = iota
	// Tanh is the hyperbolic tangent.
	Tanh
	// ReLU is max(0, a).
	ReLU
	// Identity is f(a) = a. It is the only additive activation
	// (f(x+y) = f(x)+f(y)), hence the only one for which the paper's
	// layer-2 sharing scheme is exact.
	Identity
)

// String names the activation.
func (a Activation) String() string {
	switch a {
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	case ReLU:
		return "relu"
	case Identity:
		return "identity"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// Additive reports whether the activation satisfies the Cauchy functional
// form f(x+y) = f(x)+f(y) (paper §VI-A2). Only such activations admit exact
// computation sharing beyond the first layer.
func (a Activation) Additive() bool { return a == Identity }

// Apply computes f(v) element-wise into dst (dst may alias v).
func (a Activation) Apply(dst, v []float64) {
	switch a {
	case Sigmoid:
		for i, x := range v {
			dst[i] = 1 / (1 + math.Exp(-x))
		}
	case Tanh:
		for i, x := range v {
			dst[i] = math.Tanh(x)
		}
	case ReLU:
		for i, x := range v {
			if x > 0 {
				dst[i] = x
			} else {
				dst[i] = 0
			}
		}
	case Identity:
		copy(dst, v)
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", int(a)))
	}
}

// Derivative computes f'(a) element-wise into dst, given both the
// pre-activations a and the activations h = f(a).
func (act Activation) Derivative(dst, a, h []float64) {
	switch act {
	case Sigmoid:
		for i := range dst {
			dst[i] = h[i] * (1 - h[i])
		}
	case Tanh:
		for i := range dst {
			dst[i] = 1 - h[i]*h[i]
		}
	case ReLU:
		for i := range dst {
			if a[i] > 0 {
				dst[i] = 1
			} else {
				dst[i] = 0
			}
		}
	case Identity:
		for i := range dst {
			dst[i] = 1
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", int(act)))
	}
}
