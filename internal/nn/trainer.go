package nn

import (
	"factorml/internal/core"
	"factorml/internal/linalg"
)

// workspace holds the per-tuple forward/backward buffers and the gradient
// accumulators shared by all trainers. Buffers are allocated once, so the
// training loops run allocation-free.
type workspace struct {
	net *Network
	ops *core.Ops

	a     [][]float64 // pre-activations, a[l] has length Sizes[l+1]
	h     [][]float64 // activations (output layer stays linear)
	delta [][]float64

	gW []*linalg.Dense
	gB [][]float64
}

func newWorkspace(net *Network, ops *core.Ops) *workspace {
	w := &workspace{net: net, ops: ops}
	for l := 0; l < net.Layers(); l++ {
		sz := net.Sizes[l+1]
		w.a = append(w.a, make([]float64, sz))
		w.h = append(w.h, make([]float64, sz))
		w.delta = append(w.delta, make([]float64, sz))
		w.gW = append(w.gW, linalg.NewDense(sz, net.Sizes[l]))
		w.gB = append(w.gB, make([]float64, sz))
	}
	return w
}

func (w *workspace) zeroGrads() {
	for l := range w.gW {
		w.gW[l].Zero()
		linalg.VecZero(w.gB[l])
	}
}

// applyStep performs W -= (lr/batchN)·gW, B -= (lr/batchN)·gB.
func (w *workspace) applyStep(lr float64, batchN int) {
	if batchN == 0 {
		return
	}
	scale := -lr / float64(batchN)
	for l := range w.gW {
		w.net.W[l].AddScaled(scale, w.gW[l])
		linalg.Axpy(scale, w.gB[l], w.net.B[l])
	}
}

// forwardDense computes the full forward pass for one input, storing
// pre-activations and activations, and returns the scalar output.
func (w *workspace) forwardDense(x []float64) float64 {
	net := w.net
	linalg.MatVec(w.a[0], net.W[0], x)
	w.ops.AddMatVec(net.Sizes[1], net.Sizes[0])
	linalg.VecAdd(w.a[0], w.a[0], net.B[0])
	w.ops.Adds += int64(net.Sizes[1])
	net.Act.Apply(w.h[0], w.a[0])
	return w.forwardUpper(1)
}

// forwardUpper continues the forward pass from layer `from` (assuming
// a[from-1] and h[from-1] are set) and returns the output.
func (w *workspace) forwardUpper(from int) float64 {
	net := w.net
	for l := from; l < net.Layers(); l++ {
		linalg.MatVec(w.a[l], net.W[l], w.h[l-1])
		w.ops.AddMatVec(net.Sizes[l+1], net.Sizes[l])
		linalg.VecAdd(w.a[l], w.a[l], net.B[l])
		w.ops.Adds += int64(net.Sizes[l+1])
		if l < net.Layers()-1 {
			net.Act.Apply(w.h[l], w.a[l])
		} else {
			copy(w.h[l], w.a[l]) // linear output
		}
	}
	return w.h[net.Layers()-1][0]
}

// backward propagates the error for one example with output o and target y,
// accumulating the gradients of every layer except the input layer's
// weights/bias, which the caller handles (the factorized trainer splits
// them across relations). It leaves δ⁰ in w.delta[0].
func (w *workspace) backward(o, y float64) {
	net := w.net
	last := net.Layers() - 1
	w.delta[last][0] = o - y
	w.ops.Adds++
	for l := last; l >= 1; l-- {
		// Gradients of layer l (weights see h[l-1]).
		linalg.OuterAccum(w.gW[l], 1, w.delta[l], w.h[l-1])
		w.ops.AddOuterPlain(net.Sizes[l+1], net.Sizes[l])
		linalg.Axpy(1, w.delta[l], w.gB[l])
		w.ops.Adds += int64(net.Sizes[l+1])
		// δ^{l-1} = (W_lᵀ δ^l) ⊙ f'(a^{l-1}).
		linalg.VecMat(w.delta[l-1], w.delta[l], net.W[l])
		w.ops.AddMatVec(net.Sizes[l], net.Sizes[l+1])
		applyDerivInPlace(net.Act, w.delta[l-1], w.a[l-1], w.h[l-1])
		w.ops.Mul += int64(net.Sizes[l])
	}
}

// applyDerivInPlace multiplies delta by f'(a) element-wise.
func applyDerivInPlace(act Activation, delta, a, h []float64) {
	switch act {
	case Sigmoid:
		for i := range delta {
			delta[i] *= h[i] * (1 - h[i])
		}
	case Tanh:
		for i := range delta {
			delta[i] *= 1 - h[i]*h[i]
		}
	case ReLU:
		for i := range delta {
			if a[i] <= 0 {
				delta[i] = 0
			}
		}
	case Identity:
		// derivative 1
	}
}

// accumulateInputGrad adds the input-layer gradient δ⁰ ⊗ xᵀ for the dense
// trainers (monolithic x).
func (w *workspace) accumulateInputGrad(x []float64) {
	linalg.OuterAccum(w.gW[0], 1, w.delta[0], x)
	w.ops.AddOuterPlain(w.net.Sizes[1], w.net.Sizes[0])
	linalg.Axpy(1, w.delta[0], w.gB[0])
	w.ops.Adds += int64(w.net.Sizes[1])
}
