package nn

import (
	"sync"

	"factorml/internal/core"
	"factorml/internal/linalg"
	"factorml/internal/parallel"
)

// markedPass streams every joined training example in deterministic order,
// invoking onBlockEnd at each R1-block boundary (so the Block batching mode
// forms identical mini-batches in all trainers).
type markedPass func(onTuple func(x []float64, y float64) error, onBlockEnd func() error) error

// gradAcc is a per-chunk gradient accumulator: a private workspace whose
// gW/gB fold the chunk's example gradients, plus loss/batch partials. The
// accumulators merge into the main workspace strictly in chunk order, so
// the parameter trajectory is bit-identical for every worker count.
type gradAcc struct {
	ws     *workspace
	ops    core.Ops
	loss   float64
	batchN int
	t1     []float64 // F-NN layer-2-sharing scratch
}

func newGradAccPool(net *Network, t1Len int) *sync.Pool {
	return &sync.Pool{New: func() any {
		a := &gradAcc{t1: make([]float64, t1Len)}
		a.ws = newWorkspace(net, &a.ops)
		return a
	}}
}

func (a *gradAcc) reset() {
	a.ops = core.Ops{}
	a.loss = 0
	a.batchN = 0
	a.ws.zeroGrads()
}

// example folds one training example into the accumulator.
func (a *gradAcc) example(x []float64, y float64) {
	o := a.ws.forwardDense(x)
	diff := o - y
	a.loss += 0.5 * diff * diff
	a.ws.backward(o, y)
	a.ws.accumulateInputGrad(x)
	a.batchN++
}

// mergeInto folds the chunk gradients, loss and op counts into the main
// workspace accumulators.
func (a *gradAcc) mergeInto(w *workspace, lossSum *float64, batchN *int, stats *Stats) {
	for l := range w.gW {
		w.gW[l].AddScaled(1, a.ws.gW[l])
		linalg.VecAdd(w.gB[l], w.gB[l], a.ws.gB[l])
	}
	*lossSum += a.loss
	*batchN += a.batchN
	stats.Ops = stats.Ops.Plus(a.ops)
}

// trainDense is the engine of both M-NN and S-NN: standard backprop over a
// dense stream of joined tuples, executed by the chunked worker pool of
// internal/parallel. The producer copies examples into fixed-size chunks
// (cut additionally at R1-block boundaries under Block updates), workers
// fold each chunk into a pooled gradAcc, and the accumulators merge in
// chunk order; Block-mode gradient steps apply at a full barrier. With
// NumWorkers <= 1 the same chunk/merge structure runs inline on the
// streamed examples with no copying. Either way the parameter trajectory is
// bit-identical for every cfg.NumWorkers value.
func trainDense(pass markedPass, n int, cfg Config, net *Network, stats *Stats) error {
	nw := parallel.Workers(cfg.NumWorkers)
	d := net.Sizes[0]
	w := newWorkspace(net, &stats.Ops)
	accPool := newGradAccPool(net, 0)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		w.zeroGrads()
		lossSum := 0.0
		batchN := 0
		var err error
		if nw <= 1 {
			// Inline path: fold each example as it streams, merging at the
			// same chunk boundaries as the pooled path.
			var acc *gradAcc
			inChunk := 0
			flushAcc := func() error {
				if acc == nil {
					return nil
				}
				acc.mergeInto(w, &lossSum, &batchN, stats)
				accPool.Put(acc)
				acc, inChunk = nil, 0
				return nil
			}
			err = pass(
				func(x []float64, y float64) error {
					if acc == nil {
						acc = accPool.Get().(*gradAcc)
						acc.reset()
					}
					acc.example(x, y)
					inChunk++
					if inChunk == parallel.DefaultChunkRows {
						return flushAcc()
					}
					return nil
				},
				func() error {
					if cfg.Mode != Block {
						return nil
					}
					if err := flushAcc(); err != nil {
						return err
					}
					w.applyStep(cfg.LearningRate, batchN)
					w.zeroGrads()
					batchN = 0
					return nil
				},
			)
			if err == nil {
				err = flushAcc()
			}
		} else {
			err = parallel.Run(nw,
				func(f *parallel.Feed[*parallel.RowChunk]) error {
					cur := parallel.GetRowChunk(0, d, true)
					flush := func() error {
						if cur.N == 0 {
							return nil
						}
						if err := f.Emit(cur); err != nil {
							return err
						}
						cur = parallel.GetRowChunk(0, d, true)
						return nil
					}
					err := pass(
						func(x []float64, y float64) error {
							copy(cur.Rows[cur.N*d:(cur.N+1)*d], x)
							cur.Ys[cur.N] = y
							cur.N++
							if cur.N == parallel.DefaultChunkRows {
								return flush()
							}
							return nil
						},
						func() error {
							if cfg.Mode != Block {
								return nil
							}
							if err := flush(); err != nil {
								return err
							}
							// Barrier: every emitted chunk is merged, and no
							// worker reads the parameters while they step.
							return f.Barrier(func() error {
								w.applyStep(cfg.LearningRate, batchN)
								w.zeroGrads()
								batchN = 0
								return nil
							})
						},
					)
					if err != nil {
						return err
					}
					if cur.N > 0 {
						return f.Emit(cur)
					}
					parallel.PutRowChunk(cur)
					return nil
				},
				func(c *parallel.RowChunk) (*gradAcc, error) {
					a := accPool.Get().(*gradAcc)
					a.reset()
					for i := 0; i < c.N; i++ {
						a.example(c.Rows[i*c.D:(i+1)*c.D], c.Ys[i])
					}
					parallel.PutRowChunk(c)
					return a, nil
				},
				func(a *gradAcc) error {
					a.mergeInto(w, &lossSum, &batchN, stats)
					accPool.Put(a)
					return nil
				})
		}
		if err != nil {
			return err
		}
		if cfg.Mode == Epoch {
			w.applyStep(cfg.LearningRate, n)
		}
		stats.Loss = append(stats.Loss, lossSum/float64(n))
		stats.Epochs = epoch + 1
	}
	return nil
}
