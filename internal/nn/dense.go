package nn

import (
	"sync"

	"factorml/internal/core"
	"factorml/internal/factor"
	"factorml/internal/linalg"
	"factorml/internal/parallel"
)

// gradAcc is a per-chunk gradient accumulator: a private workspace whose
// gW/gB fold the chunk's example gradients, plus loss/batch partials. The
// accumulators merge into the main workspace strictly in chunk order, so
// the parameter trajectory is bit-identical for every worker count.
type gradAcc struct {
	ws     *workspace
	ops    core.Ops
	loss   float64
	batchN int
	t1     []float64 // F-NN layer-2-sharing scratch
}

func newGradAccPool(net *Network, t1Len int) *sync.Pool {
	return &sync.Pool{New: func() any {
		a := &gradAcc{t1: make([]float64, t1Len)}
		a.ws = newWorkspace(net, &a.ops)
		return a
	}}
}

func (a *gradAcc) reset() {
	a.ops = core.Ops{}
	a.loss = 0
	a.batchN = 0
	a.ws.zeroGrads()
}

// example folds one training example into the accumulator.
func (a *gradAcc) example(x []float64, y float64) {
	o := a.ws.forwardDense(x)
	diff := o - y
	a.loss += 0.5 * diff * diff
	a.ws.backward(o, y)
	a.ws.accumulateInputGrad(x)
	a.batchN++
}

// mergeInto folds the chunk gradients, loss and op counts into the main
// workspace accumulators.
func (a *gradAcc) mergeInto(w *workspace, lossSum *float64, batchN *int, stats *Stats) {
	for l := range w.gW {
		w.gW[l].AddScaled(1, a.ws.gW[l])
		linalg.VecAdd(w.gB[l], w.gB[l], a.ws.gB[l])
	}
	*lossSum += a.loss
	*batchN += a.batchN
	stats.Ops.Add(a.ops)
}

// trainDense is the engine of both M-NN and S-NN: standard backprop over a
// dense stream of joined tuples, one factor.RunSGDPass per epoch. The pass
// operator copies examples into fixed-size chunks (cut additionally at
// R1-block boundaries under Block updates, where the gradient step runs at
// a full barrier), workers fold each chunk into a pooled gradAcc, and the
// accumulators merge in chunk order; with NumWorkers <= 1 the same
// chunk/merge structure runs inline on the streamed examples with no
// copying. Either way the parameter trajectory is bit-identical for every
// cfg.NumWorkers value.
func trainDense(pass factor.GroupedScan, n int, cfg Config, net *Network, stats *Stats) error {
	nw := parallel.Workers(cfg.NumWorkers)
	d := net.Sizes[0]
	w := newWorkspace(net, &stats.Ops)
	accPool := newGradAccPool(net, 0)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		w.zeroGrads()
		lossSum := 0.0
		batchN := 0
		step := func() error {
			w.applyStep(cfg.LearningRate, batchN)
			w.zeroGrads()
			batchN = 0
			return nil
		}
		err := factor.RunSGDPass("nn.sgd_epoch", nw, d, pass, cfg.Mode == Block, step, factor.PassHooks{
			NewAcc: func() any {
				a := accPool.Get().(*gradAcc)
				a.reset()
				return a
			},
			Fold: func(acc any, _ int, rows, ys []float64, nr int) error {
				a := acc.(*gradAcc)
				for i := 0; i < nr; i++ {
					a.example(rows[i*d:(i+1)*d], ys[i])
				}
				return nil
			},
			Merge: func(acc any) error {
				a := acc.(*gradAcc)
				a.mergeInto(w, &lossSum, &batchN, stats)
				accPool.Put(a)
				return nil
			},
		})
		if err != nil {
			return err
		}
		if cfg.Mode == Epoch {
			w.applyStep(cfg.LearningRate, n)
		}
		stats.Loss = append(stats.Loss, lossSum/float64(n))
		stats.Epochs = epoch + 1
	}
	return nil
}
