package nn

// markedPass streams every joined training example in deterministic order,
// invoking onBlockEnd at each R1-block boundary (so the Block batching mode
// forms identical mini-batches in all trainers).
type markedPass func(onTuple func(x []float64, y float64) error, onBlockEnd func() error) error

// trainDense is the engine of both M-NN and S-NN: standard backprop over a
// dense stream of joined tuples.
func trainDense(pass markedPass, n int, cfg Config, net *Network, stats *Stats) error {
	w := newWorkspace(net, &stats.Ops)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		w.zeroGrads()
		lossSum := 0.0
		batchN := 0
		err := pass(
			func(x []float64, y float64) error {
				o := w.forwardDense(x)
				diff := o - y
				lossSum += 0.5 * diff * diff
				w.backward(o, y)
				w.accumulateInputGrad(x)
				batchN++
				return nil
			},
			func() error {
				if cfg.Mode == Block {
					w.applyStep(cfg.LearningRate, batchN)
					w.zeroGrads()
					batchN = 0
				}
				return nil
			},
		)
		if err != nil {
			return err
		}
		if cfg.Mode == Epoch {
			w.applyStep(cfg.LearningRate, n)
		}
		stats.Loss = append(stats.Loss, lossSum/float64(n))
		stats.Epochs = epoch + 1
	}
	return nil
}
