package nn

import (
	"bytes"
	"strings"
	"testing"
)

func TestNetworkSaveLoadRoundTrip(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 200, 10, 2, 2)
	res, err := TrainF(db, spec, Config{Hidden: []int{5, 4}, Act: Tanh, Epochs: 2, LearningRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Net.MaxParamDiff(loaded); d != 0 {
		t.Fatalf("round trip changed parameters by %v", d)
	}
	x := make([]float64, res.Net.InputDim())
	for i := range x {
		x[i] = 0.3 * float64(i)
	}
	if got, want := loaded.Predict(x), res.Net.Predict(x); got != want {
		t.Fatalf("Predict after load: %v vs %v", got, want)
	}
	if loaded.Act != Tanh {
		t.Fatalf("activation lost: %v", loaded.Act)
	}
}

func TestLoadNetworkRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "garbage",
		"bad version":   `{"version":9,"sizes":[1,1],"activation":0,"weights":[[1]],"biases":[[0]]}`,
		"too few sizes": `{"version":1,"sizes":[3],"activation":0,"weights":[],"biases":[]}`,
		"layer count":   `{"version":1,"sizes":[2,1],"activation":0,"weights":[],"biases":[]}`,
		"bad act":       `{"version":1,"sizes":[2,1],"activation":42,"weights":[[1,1]],"biases":[[0]]}`,
		"weight size":   `{"version":1,"sizes":[2,1],"activation":0,"weights":[[1]],"biases":[[0]]}`,
		"bias size":     `{"version":1,"sizes":[2,1],"activation":0,"weights":[[1,1]],"biases":[[0,0]]}`,
	}
	for name, blob := range cases {
		if _, err := LoadNetwork(strings.NewReader(blob)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}
