package nn

import (
	"fmt"
	"math/rand"
	"time"

	"factorml/internal/core"
	"factorml/internal/factor"
	"factorml/internal/join"
	"factorml/internal/linalg"
	"factorml/internal/parallel"
	"factorml/internal/storage"
)

// TrainF is the paper's F-NN: backprop where the layer-1 forward pass is
// factorized across relations. For every dimension tuple, the partial
// pre-activation W_R·x_R is computed once per parameter state and reused
// for all matching fact tuples (§VI-A1); the backward pass reads features
// directly from the base relations (§VI-A3). With cfg.ShareLayer2 (and the
// Identity activation) the §VI-A2 second-layer sharing scheme is used, and
// with cfg.GroupedGradient the layer-1 dimension gradient is accumulated
// per group (DESIGN.md §6 extensions). All variants are exact: the trained
// network matches TrainM/TrainS.
func TrainF(db *storage.Database, spec *join.Spec, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if !spec.S.Schema().HasTarget {
		return nil, fmt.Errorf("nn: fact table %q has no target column", spec.S.Schema().Name)
	}
	start := time.Now()
	io0 := db.Pool().Stats()

	ps, err := factor.NewPartScan(spec, cfg.BlockPages)
	if err != nil {
		return nil, err
	}

	net, err := initNetwork(cfg, ps.P.D)
	if err != nil {
		return nil, err
	}
	res := &Result{Net: net}
	if err := trainFactorized(ps, cfg, net, &res.Stats); err != nil {
		return nil, err
	}
	res.Stats.IO = db.Pool().Stats().Sub(io0)
	res.Stats.TrainTime = time.Since(start)
	return res, nil
}

// partCaches holds per-dimension-tuple cached forward quantities for one
// parameter state: t = W0_part·x_part (length nh0), and — under layer-2
// sharing — t3 = W1·f(t) (length nh1).
type partCaches struct {
	t  [][]float64
	t3 [][]float64
}

// fwdCtx bundles the read-only state of the factorized forward pass. Both
// the sequential and the parallel F-NN trainer call forward once per
// joined tuple, so the §VI-A1/§VI-A2 math lives in exactly one place.
type fwdCtx struct {
	net          *Network
	share        bool
	dS, nh0, nh1 int
	blkCache     *partCaches
	resCache     []*partCaches
	cBias        []float64
}

// forward computes the factorized forward pass for one joined tuple using
// ws's buffers (and the caller's t1 scratch under layer-2 sharing),
// charging ws's op counter, and returns the network output.
func (fc *fwdCtx) forward(ws *workspace, t1 []float64, s *storage.Tuple, r1 int, res []int) float64 {
	net := fc.net
	ops := ws.ops
	if !fc.share {
		// Factorized layer-1 forward (§VI-A1): a⁰ = W_S·x_S + Σ_m t_m + b.
		// Seed the accumulator with the cached dimension part, then add the
		// fact part.
		linalg.VecAdd(ws.a[0], fc.blkCache.t[r1], net.B[0])
		ops.Adds += int64(fc.nh0)
		for j, ri := range res {
			linalg.VecAdd(ws.a[0], ws.a[0], fc.resCache[j].t[ri])
			ops.Adds += int64(fc.nh0)
		}
		linalg.MatVecRangeAdd(ws.a[0], net.W[0], 0, s.Features)
		ops.AddMatVec(fc.nh0, fc.dS)
		ops.Adds += int64(fc.nh0)
		net.Act.Apply(ws.h[0], ws.a[0])
		return ws.forwardUpper(1)
	}
	// §VI-A2 layer-2 sharing (Identity activation):
	// T1 = W_S·x_S; a¹ = W1·f(T1) + Σ t3_m + (W1·b0 + b1).
	linalg.MatVecRange(t1, net.W[0], 0, s.Features)
	ops.AddMatVec(fc.nh0, fc.dS)
	copy(ws.a[0], t1)
	linalg.VecAdd(ws.a[0], ws.a[0], fc.blkCache.t[r1])
	ops.Adds += int64(fc.nh0)
	for j, ri := range res {
		linalg.VecAdd(ws.a[0], ws.a[0], fc.resCache[j].t[ri])
		ops.Adds += int64(fc.nh0)
	}
	linalg.VecAdd(ws.a[0], ws.a[0], net.B[0])
	ops.Adds += int64(fc.nh0)
	copy(ws.h[0], ws.a[0]) // Identity
	// Second layer from shared parts.
	linalg.MatVec(ws.a[1], net.W[1], t1)
	ops.AddMatVec(fc.nh1, fc.nh0)
	linalg.VecAdd(ws.a[1], ws.a[1], fc.blkCache.t3[r1])
	ops.Adds += int64(fc.nh1)
	for j, ri := range res {
		linalg.VecAdd(ws.a[1], ws.a[1], fc.resCache[j].t3[ri])
		ops.Adds += int64(fc.nh1)
	}
	linalg.VecAdd(ws.a[1], ws.a[1], fc.cBias)
	ops.Adds += int64(fc.nh1)
	copy(ws.h[1], ws.a[1]) // Identity
	return ws.forwardUpper(2)
}

func (pc *partCaches) ensure(n, nh0, nh1 int, share bool) {
	if cap(pc.t) < n {
		pc.t = make([][]float64, n)
		pc.t3 = make([][]float64, n)
	}
	pc.t = pc.t[:n]
	pc.t3 = pc.t3[:n]
	for i := 0; i < n; i++ {
		if pc.t[i] == nil {
			pc.t[i] = make([]float64, nh0)
		}
		if share && pc.t3[i] == nil {
			pc.t3[i] = make([]float64, nh1)
		}
	}
}

// trainFactorized dispatches to the chunked-parallel implementation, except
// under the GroupedGradient extension, whose sparse per-group accumulators
// are a sequential cost-model study (DESIGN.md §6) and stay on the legacy
// loop for every NumWorkers value.
func trainFactorized(ps *factor.PartScan, cfg Config, net *Network, stats *Stats) error {
	if cfg.GroupedGradient {
		return trainFactorizedSeq(ps, cfg, net, stats)
	}
	return trainFactorizedPar(ps, cfg, net, stats)
}

// trainFactorizedPar is F-NN on the worker pool: the per-block dimension
// caches fill over disjoint grains, matches stream through the parallel
// join probe in fixed chunks, each chunk folds its example gradients into a
// private gradAcc, and the accumulators merge in chunk order — so the
// parameter trajectory is bit-identical for every cfg.NumWorkers value.
// Cache refills and Block-mode gradient steps happen at full barriers.
func trainFactorizedPar(ps *factor.PartScan, cfg Config, net *Network, stats *Stats) error {
	ps.Pass = "fnn.sgd"
	p := ps.P
	nw := parallel.Workers(cfg.NumWorkers)
	w := newWorkspace(net, &stats.Ops)
	q := p.Parts() - 1
	dS := p.Dims[0]
	nh0 := net.Sizes[1]
	nh1 := 0
	if net.Layers() >= 2 {
		nh1 = net.Sizes[2]
	}
	share := cfg.ShareLayer2

	var blkCache partCaches
	resCache := make([]*partCaches, q-1)
	for j := range resCache {
		resCache[j] = &partCaches{}
	}
	cBias := make([]float64, nh1)
	n := ps.NumRows()
	accPool := newGradAccPool(net, nh0)
	fc := &fwdCtx{net: net, share: share, dS: dS, nh0: nh0, nh1: nh1,
		blkCache: &blkCache, resCache: resCache, cBias: cBias}

	fillPart := func(pc *partCaches, tuples []*storage.Tuple, part int) error {
		pc.ensure(len(tuples), nh0, nh1, share)
		off := p.Offs[part]
		dPart := p.Dims[part]
		return ps.FillCaches(nw, tuples, &stats.Ops, func(i int, tp *storage.Tuple, ops *core.Ops) error {
			linalg.MatVecRange(pc.t[i], net.W[0], off, tp.Features)
			ops.AddMatVec(nh0, dPart)
			if share {
				// t3 = W1·f(t); f = Identity, so f(t) = t.
				linalg.MatVec(pc.t3[i], net.W[1], pc.t[i])
				ops.AddMatVec(nh1, nh0)
			}
			return nil
		})
	}
	fillShared := func() {
		if !share {
			return
		}
		// cBias = W1·b0 + b1 accounts for the layer-1 bias flowing through
		// the additive activation.
		linalg.MatVec(cBias, net.W[1], net.B[0])
		stats.Ops.AddMatVec(nh1, nh0)
		linalg.VecAdd(cBias, cBias, net.B[1])
		stats.Ops.Adds += int64(nh1)
	}

	var shuffleRng *rand.Rand
	if cfg.ShuffleSeed != 0 {
		shuffleRng = rand.New(rand.NewSource(cfg.ShuffleSeed))
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if shuffleRng != nil {
			ps.Runner.Shuffle(shuffleRng) // one permutation per epoch (§VI)
		}
		w.zeroGrads()
		lossSum := 0.0
		batchN := 0
		residentFresh := false
		var curBlock []*storage.Tuple

		err := ps.RunChunks(nw, join.ParallelCallbacks{
			OnBlockStart: func(block []*storage.Tuple) error {
				curBlock = block
				// Dimension caches are valid for one parameter state: per
				// block under Block updates, per pass under Epoch updates.
				if cfg.Mode == Block || !residentFresh {
					for j := 0; j < q-1; j++ {
						if err := fillPart(resCache[j], ps.Resident(j), 2+j); err != nil {
							return err
						}
					}
					fillShared()
					residentFresh = true
				}
				return fillPart(&blkCache, block, 1)
			},
			NewState: func() any {
				a := accPool.Get().(*gradAcc)
				a.reset()
				return a
			},
			OnMatchChunk: func(state any, matches []join.Match) error {
				a := state.(*gradAcc)
				ws := a.ws
				for _, m := range matches {
					s := m.S
					o := fc.forward(ws, a.t1, s, m.R1, m.Res)

					diff := o - s.Target
					a.loss += 0.5 * diff * diff
					ws.backward(o, s.Target)

					// Input-layer gradients, column-partitioned (Eq. 29/32).
					delta0 := ws.delta[0]
					linalg.OuterAccumAt(ws.gW[0], 0, 0, 1, delta0, s.Features)
					a.ops.AddOuterPlain(nh0, dS)
					linalg.Axpy(1, delta0, ws.gB[0])
					a.ops.Adds += int64(nh0)
					linalg.OuterAccumAt(ws.gW[0], 0, p.Offs[1], 1, delta0, curBlock[m.R1].Features)
					a.ops.AddOuterPlain(nh0, p.Dims[1])
					for j, ri := range m.Res {
						linalg.OuterAccumAt(ws.gW[0], 0, p.Offs[2+j], 1, delta0, ps.Resident(j)[ri].Features)
						a.ops.AddOuterPlain(nh0, p.Dims[2+j])
					}
					a.batchN++
				}
				return nil
			},
			OnChunkMerged: func(state any) error {
				a := state.(*gradAcc)
				a.mergeInto(w, &lossSum, &batchN, stats)
				accPool.Put(a)
				return nil
			},
			OnBlockEnd: func() error {
				if cfg.Mode == Block {
					w.applyStep(cfg.LearningRate, batchN)
					w.zeroGrads()
					batchN = 0
					residentFresh = false
				}
				return nil
			},
		})
		if err != nil {
			return err
		}
		if cfg.Mode == Epoch {
			w.applyStep(cfg.LearningRate, n)
		}
		stats.Loss = append(stats.Loss, lossSum/float64(n))
		stats.Epochs = epoch + 1
	}
	return nil
}

// trainFactorizedSeq is the legacy single-threaded F-NN loop, kept for the
// GroupedGradient extension whose per-group gradient accumulators are not
// chunked.
func trainFactorizedSeq(ps *factor.PartScan, cfg Config, net *Network, stats *Stats) error {
	ps.Pass = "fnn.sgd"
	p := ps.P
	w := newWorkspace(net, &stats.Ops)
	q := p.Parts() - 1
	dS := p.Dims[0]
	nh0 := net.Sizes[1]
	nh1 := 0
	if net.Layers() >= 2 {
		nh1 = net.Sizes[2]
	}
	share := cfg.ShareLayer2

	var blkCache partCaches
	resCache := make([]*partCaches, q-1)
	for j := range resCache {
		resCache[j] = &partCaches{}
	}
	// Grouped-gradient accumulators (Σ δ⁰ per dimension tuple).
	var gsumBlk [][]float64
	gsumRes := make([][][]float64, q-1)

	t1 := make([]float64, nh0) // W0_S·x_S (kept separate under sharing)
	cBias := make([]float64, nh1)

	n := ps.NumRows()
	fc := &fwdCtx{net: net, share: share, dS: dS, nh0: nh0, nh1: nh1,
		blkCache: &blkCache, resCache: resCache, cBias: cBias}

	// The grouped-gradient trainer is sequential by design, so its cache
	// fills run through the shared operator with a single worker — same
	// grain geometry, same accounting, no pool.
	fillPart := func(pc *partCaches, tuples []*storage.Tuple, part int) {
		pc.ensure(len(tuples), nh0, nh1, share)
		off := p.Offs[part]
		//nolint:errcheck // the fill body cannot fail
		ps.FillCaches(1, tuples, &stats.Ops, func(i int, tp *storage.Tuple, ops *core.Ops) error {
			linalg.MatVecRange(pc.t[i], net.W[0], off, tp.Features)
			ops.AddMatVec(nh0, p.Dims[part])
			if share {
				// t3 = W1·f(t); f = Identity, so f(t) = t.
				linalg.MatVec(pc.t3[i], net.W[1], pc.t[i])
				ops.AddMatVec(nh1, nh0)
			}
			return nil
		})
	}
	fillShared := func() {
		if !share {
			return
		}
		// cBias = W1·b0 + b1 accounts for the layer-1 bias flowing through
		// the additive activation.
		linalg.MatVec(cBias, net.W[1], net.B[0])
		stats.Ops.AddMatVec(nh1, nh0)
		linalg.VecAdd(cBias, cBias, net.B[1])
		stats.Ops.Adds += int64(nh1)
	}

	flushGroupedBlock := func(block []*storage.Tuple) {
		if !cfg.GroupedGradient {
			return
		}
		for i, tp := range block {
			linalg.OuterAccumAt(w.gW[0], 0, p.Offs[1], 1, gsumBlk[i], tp.Features)
			stats.Ops.AddOuterPlain(nh0, p.Dims[1])
			linalg.VecZero(gsumBlk[i])
		}
	}
	flushGroupedResident := func() {
		if !cfg.GroupedGradient {
			return
		}
		for j := 0; j < q-1; j++ {
			for t, tp := range ps.Resident(j) {
				linalg.OuterAccumAt(w.gW[0], 0, p.Offs[2+j], 1, gsumRes[j][t], tp.Features)
				stats.Ops.AddOuterPlain(nh0, p.Dims[2+j])
				linalg.VecZero(gsumRes[j][t])
			}
		}
	}

	var shuffleRng *rand.Rand
	if cfg.ShuffleSeed != 0 {
		shuffleRng = rand.New(rand.NewSource(cfg.ShuffleSeed))
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if shuffleRng != nil {
			ps.Runner.Shuffle(shuffleRng) // one permutation per epoch (§VI)
		}
		w.zeroGrads()
		lossSum := 0.0
		batchN := 0
		residentFresh := false
		var curBlock []*storage.Tuple

		err := ps.Run(join.Callbacks{
			OnBlockStart: func(block []*storage.Tuple) error {
				curBlock = block
				// Dimension caches are valid for one parameter state: per
				// block under Block updates, per pass under Epoch updates.
				if cfg.Mode == Block || !residentFresh {
					for j := 0; j < q-1; j++ {
						fillPart(resCache[j], ps.Resident(j), 2+j)
					}
					fillShared()
					residentFresh = true
					if cfg.GroupedGradient && q > 1 && gsumRes[0] == nil {
						for j := 0; j < q-1; j++ {
							gsumRes[j] = make([][]float64, len(ps.Resident(j)))
							for t := range gsumRes[j] {
								gsumRes[j][t] = make([]float64, nh0)
							}
						}
					}
				}
				fillPart(&blkCache, block, 1)
				if cfg.GroupedGradient {
					if cap(gsumBlk) < len(block) {
						gsumBlk = make([][]float64, len(block))
					}
					gsumBlk = gsumBlk[:len(block)]
					for i := range gsumBlk {
						if gsumBlk[i] == nil {
							gsumBlk[i] = make([]float64, nh0)
						} else {
							linalg.VecZero(gsumBlk[i])
						}
					}
				}
				return nil
			},
			OnMatch: func(s *storage.Tuple, r1Idx int, resIdx []int) error {
				o := fc.forward(w, t1, s, r1Idx, resIdx)

				diff := o - s.Target
				lossSum += 0.5 * diff * diff
				w.backward(o, s.Target)

				// Input-layer gradients, column-partitioned (Eq. 29/32).
				delta0 := w.delta[0]
				linalg.OuterAccumAt(w.gW[0], 0, 0, 1, delta0, s.Features)
				stats.Ops.AddOuterPlain(nh0, dS)
				linalg.Axpy(1, delta0, w.gB[0])
				stats.Ops.Adds += int64(nh0)
				if cfg.GroupedGradient {
					linalg.Axpy(1, delta0, gsumBlk[r1Idx])
					stats.Ops.Adds += int64(nh0)
					for j, ri := range resIdx {
						linalg.Axpy(1, delta0, gsumRes[j][ri])
						stats.Ops.Adds += int64(nh0)
					}
				} else {
					linalg.OuterAccumAt(w.gW[0], 0, p.Offs[1], 1, delta0, curBlock[r1Idx].Features)
					stats.Ops.AddOuterPlain(nh0, p.Dims[1])
					for j, ri := range resIdx {
						linalg.OuterAccumAt(w.gW[0], 0, p.Offs[2+j], 1, delta0, ps.Resident(j)[ri].Features)
						stats.Ops.AddOuterPlain(nh0, p.Dims[2+j])
					}
				}
				batchN++
				return nil
			},
			OnBlockEnd: func() error {
				flushGroupedBlock(curBlock)
				if cfg.Mode == Block {
					flushGroupedResident()
					w.applyStep(cfg.LearningRate, batchN)
					w.zeroGrads()
					batchN = 0
					residentFresh = false
				}
				return nil
			},
		})
		if err != nil {
			return err
		}
		if cfg.Mode == Epoch {
			flushGroupedResident()
			w.applyStep(cfg.LearningRate, n)
		}
		stats.Loss = append(stats.Loss, lossSum/float64(n))
		stats.Epochs = epoch + 1
	}
	return nil
}
