package nn

import (
	"fmt"
	"math/rand"
	"time"

	"factorml/internal/core"
	"factorml/internal/join"
	"factorml/internal/linalg"
	"factorml/internal/storage"
)

// TrainF is the paper's F-NN: backprop where the layer-1 forward pass is
// factorized across relations. For every dimension tuple, the partial
// pre-activation W_R·x_R is computed once per parameter state and reused
// for all matching fact tuples (§VI-A1); the backward pass reads features
// directly from the base relations (§VI-A3). With cfg.ShareLayer2 (and the
// Identity activation) the §VI-A2 second-layer sharing scheme is used, and
// with cfg.GroupedGradient the layer-1 dimension gradient is accumulated
// per group (DESIGN.md §6 extensions). All variants are exact: the trained
// network matches TrainM/TrainS.
func TrainF(db *storage.Database, spec *join.Spec, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if !spec.S.Schema().HasTarget {
		return nil, fmt.Errorf("nn: fact table %q has no target column", spec.S.Schema().Name)
	}
	start := time.Now()
	io0 := db.Pool().Stats()

	sp := *spec
	if sp.BlockPages == 0 {
		sp.BlockPages = cfg.BlockPages
	}
	runner, err := join.NewRunner(&sp)
	if err != nil {
		return nil, err
	}

	dims := []int{sp.S.Schema().NumFeatures()}
	for _, r := range sp.Rs {
		dims = append(dims, r.Schema().NumFeatures())
	}
	p := core.NewPartition(dims)

	net, err := NewNetwork(cfg.sizes(p.D), cfg.Act, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &Result{Net: net}
	if err := trainFactorized(runner, p, cfg, net, &res.Stats); err != nil {
		return nil, err
	}
	res.Stats.IO = db.Pool().Stats().Sub(io0)
	res.Stats.TrainTime = time.Since(start)
	return res, nil
}

// partCaches holds per-dimension-tuple cached forward quantities for one
// parameter state: t = W0_part·x_part (length nh0), and — under layer-2
// sharing — t3 = W1·f(t) (length nh1).
type partCaches struct {
	t  [][]float64
	t3 [][]float64
}

func (pc *partCaches) ensure(n, nh0, nh1 int, share bool) {
	if cap(pc.t) < n {
		pc.t = make([][]float64, n)
		pc.t3 = make([][]float64, n)
	}
	pc.t = pc.t[:n]
	pc.t3 = pc.t3[:n]
	for i := 0; i < n; i++ {
		if pc.t[i] == nil {
			pc.t[i] = make([]float64, nh0)
		}
		if share && pc.t3[i] == nil {
			pc.t3[i] = make([]float64, nh1)
		}
	}
}

func trainFactorized(runner *join.Runner, p core.Partition, cfg Config, net *Network, stats *Stats) error {
	w := newWorkspace(net, &stats.Ops)
	q := p.Parts() - 1
	dS := p.Dims[0]
	nh0 := net.Sizes[1]
	nh1 := 0
	if net.Layers() >= 2 {
		nh1 = net.Sizes[2]
	}
	share := cfg.ShareLayer2

	var blkCache partCaches
	resCache := make([]*partCaches, q-1)
	for j := range resCache {
		resCache[j] = &partCaches{}
	}
	// Grouped-gradient accumulators (Σ δ⁰ per dimension tuple).
	var gsumBlk [][]float64
	gsumRes := make([][][]float64, q-1)

	t1 := make([]float64, nh0) // W0_S·x_S (kept separate under sharing)
	cBias := make([]float64, nh1)

	n := int(runner.Spec().S.NumTuples())

	fillPart := func(pc *partCaches, tuples []*storage.Tuple, part int) {
		pc.ensure(len(tuples), nh0, nh1, share)
		off := p.Offs[part]
		for i, tp := range tuples {
			linalg.MatVecRange(pc.t[i], net.W[0], off, tp.Features)
			stats.Ops.AddMatVec(nh0, p.Dims[part])
			if share {
				// t3 = W1·f(t); f = Identity, so f(t) = t.
				linalg.MatVec(pc.t3[i], net.W[1], pc.t[i])
				stats.Ops.AddMatVec(nh1, nh0)
			}
		}
	}
	fillShared := func() {
		if !share {
			return
		}
		// cBias = W1·b0 + b1 accounts for the layer-1 bias flowing through
		// the additive activation.
		linalg.MatVec(cBias, net.W[1], net.B[0])
		stats.Ops.AddMatVec(nh1, nh0)
		linalg.VecAdd(cBias, cBias, net.B[1])
		stats.Ops.Add += int64(nh1)
	}

	flushGroupedBlock := func(block []*storage.Tuple) {
		if !cfg.GroupedGradient {
			return
		}
		for i, tp := range block {
			linalg.OuterAccumAt(w.gW[0], 0, p.Offs[1], 1, gsumBlk[i], tp.Features)
			stats.Ops.AddOuterPlain(nh0, p.Dims[1])
			linalg.VecZero(gsumBlk[i])
		}
	}
	flushGroupedResident := func() {
		if !cfg.GroupedGradient {
			return
		}
		for j := 0; j < q-1; j++ {
			for t, tp := range runner.Resident(j) {
				linalg.OuterAccumAt(w.gW[0], 0, p.Offs[2+j], 1, gsumRes[j][t], tp.Features)
				stats.Ops.AddOuterPlain(nh0, p.Dims[2+j])
				linalg.VecZero(gsumRes[j][t])
			}
		}
	}

	var shuffleRng *rand.Rand
	if cfg.ShuffleSeed != 0 {
		shuffleRng = rand.New(rand.NewSource(cfg.ShuffleSeed))
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if shuffleRng != nil {
			runner.Shuffle(shuffleRng) // one permutation per epoch (§VI)
		}
		w.zeroGrads()
		lossSum := 0.0
		batchN := 0
		residentFresh := false
		var curBlock []*storage.Tuple

		err := runner.Run(join.Callbacks{
			OnBlockStart: func(block []*storage.Tuple) error {
				curBlock = block
				// Dimension caches are valid for one parameter state: per
				// block under Block updates, per pass under Epoch updates.
				if cfg.Mode == Block || !residentFresh {
					for j := 0; j < q-1; j++ {
						fillPart(resCache[j], runner.Resident(j), 2+j)
					}
					fillShared()
					residentFresh = true
					if cfg.GroupedGradient && q > 1 && gsumRes[0] == nil {
						for j := 0; j < q-1; j++ {
							gsumRes[j] = make([][]float64, len(runner.Resident(j)))
							for t := range gsumRes[j] {
								gsumRes[j][t] = make([]float64, nh0)
							}
						}
					}
				}
				fillPart(&blkCache, block, 1)
				if cfg.GroupedGradient {
					if cap(gsumBlk) < len(block) {
						gsumBlk = make([][]float64, len(block))
					}
					gsumBlk = gsumBlk[:len(block)]
					for i := range gsumBlk {
						if gsumBlk[i] == nil {
							gsumBlk[i] = make([]float64, nh0)
						} else {
							linalg.VecZero(gsumBlk[i])
						}
					}
				}
				return nil
			},
			OnMatch: func(s *storage.Tuple, r1Idx int, resIdx []int) error {
				var o float64
				if !share {
					// Factorized layer-1 forward (§VI-A1):
					// a⁰ = W_S·x_S + Σ_m t_m + b. Seed the accumulator with
					// the cached dimension part, then add the fact part.
					linalg.VecAdd(w.a[0], blkCache.t[r1Idx], net.B[0])
					stats.Ops.Add += int64(nh0)
					for j, ri := range resIdx {
						linalg.VecAdd(w.a[0], w.a[0], resCache[j].t[ri])
						stats.Ops.Add += int64(nh0)
					}
					linalg.MatVecRangeAdd(w.a[0], net.W[0], 0, s.Features)
					stats.Ops.AddMatVec(nh0, dS)
					stats.Ops.Add += int64(nh0)
					net.Act.Apply(w.h[0], w.a[0])
					o = w.forwardUpper(1)
				} else {
					// §VI-A2 layer-2 sharing (Identity activation):
					// T1 = W_S·x_S; a¹ = W1·f(T1) + Σ t3_m + (W1·b0 + b1).
					linalg.MatVecRange(t1, net.W[0], 0, s.Features)
					stats.Ops.AddMatVec(nh0, dS)
					copy(w.a[0], t1)
					linalg.VecAdd(w.a[0], w.a[0], blkCache.t[r1Idx])
					stats.Ops.Add += int64(nh0)
					for j, ri := range resIdx {
						linalg.VecAdd(w.a[0], w.a[0], resCache[j].t[ri])
						stats.Ops.Add += int64(nh0)
					}
					linalg.VecAdd(w.a[0], w.a[0], net.B[0])
					stats.Ops.Add += int64(nh0)
					copy(w.h[0], w.a[0]) // Identity
					// Second layer from shared parts.
					linalg.MatVec(w.a[1], net.W[1], t1)
					stats.Ops.AddMatVec(nh1, nh0)
					linalg.VecAdd(w.a[1], w.a[1], blkCache.t3[r1Idx])
					stats.Ops.Add += int64(nh1)
					for j, ri := range resIdx {
						linalg.VecAdd(w.a[1], w.a[1], resCache[j].t3[ri])
						stats.Ops.Add += int64(nh1)
					}
					linalg.VecAdd(w.a[1], w.a[1], cBias)
					stats.Ops.Add += int64(nh1)
					copy(w.h[1], w.a[1]) // Identity
					o = w.forwardUpper(2)
				}

				diff := o - s.Target
				lossSum += 0.5 * diff * diff
				w.backward(o, s.Target)

				// Input-layer gradients, column-partitioned (Eq. 29/32).
				delta0 := w.delta[0]
				linalg.OuterAccumAt(w.gW[0], 0, 0, 1, delta0, s.Features)
				stats.Ops.AddOuterPlain(nh0, dS)
				linalg.Axpy(1, delta0, w.gB[0])
				stats.Ops.Add += int64(nh0)
				if cfg.GroupedGradient {
					linalg.Axpy(1, delta0, gsumBlk[r1Idx])
					stats.Ops.Add += int64(nh0)
					for j, ri := range resIdx {
						linalg.Axpy(1, delta0, gsumRes[j][ri])
						stats.Ops.Add += int64(nh0)
					}
				} else {
					linalg.OuterAccumAt(w.gW[0], 0, p.Offs[1], 1, delta0, curBlock[r1Idx].Features)
					stats.Ops.AddOuterPlain(nh0, p.Dims[1])
					for j, ri := range resIdx {
						linalg.OuterAccumAt(w.gW[0], 0, p.Offs[2+j], 1, delta0, runner.Resident(j)[ri].Features)
						stats.Ops.AddOuterPlain(nh0, p.Dims[2+j])
					}
				}
				batchN++
				return nil
			},
			OnBlockEnd: func() error {
				flushGroupedBlock(curBlock)
				if cfg.Mode == Block {
					flushGroupedResident()
					w.applyStep(cfg.LearningRate, batchN)
					w.zeroGrads()
					batchN = 0
					residentFresh = false
				}
				return nil
			},
		})
		if err != nil {
			return err
		}
		if cfg.Mode == Epoch {
			flushGroupedResident()
			w.applyStep(cfg.LearningRate, n)
		}
		stats.Loss = append(stats.Loss, lossSum/float64(n))
		stats.Epochs = epoch + 1
	}
	return nil
}
