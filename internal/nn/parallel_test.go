package nn

import (
	"fmt"
	"testing"

	"factorml/internal/join"
	"factorml/internal/storage"
)

// assertNetsBitIdentical fails unless the two results carry bit-for-bit
// equal networks, loss traces and op counts.
func assertNetsBitIdentical(t *testing.T, name string, r1, rn *Result) {
	t.Helper()
	if d := r1.Net.MaxParamDiff(rn.Net); d != 0 {
		t.Errorf("%s: max parameter diff %g between worker counts, want bit-identical", name, d)
	}
	if len(r1.Stats.Loss) != len(rn.Stats.Loss) {
		t.Fatalf("%s: epoch counts differ: %d vs %d", name, len(r1.Stats.Loss), len(rn.Stats.Loss))
	}
	for i := range r1.Stats.Loss {
		if r1.Stats.Loss[i] != rn.Stats.Loss[i] {
			t.Errorf("%s: loss[%d] %v vs %v, want bit-identical", name, i, r1.Stats.Loss[i], rn.Stats.Loss[i])
		}
	}
	if r1.Stats.Ops != rn.Stats.Ops {
		t.Errorf("%s: op counts differ: %+v vs %+v", name, r1.Stats.Ops, rn.Stats.Ops)
	}
}

// TestParallelDeterminism asserts that for all three execution strategies,
// in both batching modes, the network trained with 4 workers is bit-for-bit
// the network trained sequentially.
func TestParallelDeterminism(t *testing.T) {
	trainers := map[string]func(*storage.Database, *join.Spec, Config) (*Result, error){
		"M-NN": TrainM, "S-NN": TrainS, "F-NN": TrainF,
	}
	for _, mode := range []BatchMode{Epoch, Block} {
		db := openDB(t)
		// 600 dimension tuples span several pages, so BlockPages=1 forces
		// several mini-batch blocks (barrier + per-block gradient steps).
		spec := synthBinary(t, db, 1500, 600, 3, 4)
		spec.BlockPages = 1
		for name, train := range trainers {
			cfg := Config{Hidden: []int{12}, Epochs: 3, Mode: mode}
			cfg.NumWorkers = 1
			r1, err := train(db, spec, cfg)
			if err != nil {
				t.Fatalf("%s mode=%d workers=1: %v", name, mode, err)
			}
			for _, w := range []int{2, 4} {
				cfg.NumWorkers = w
				rn, err := train(db, spec, cfg)
				if err != nil {
					t.Fatalf("%s mode=%d workers=%d: %v", name, mode, w, err)
				}
				assertNetsBitIdentical(t, fmt.Sprintf("%s/mode=%d/workers=%d", name, mode, w), r1, rn)
			}
		}
	}
}

// TestParallelDeterminismMultiway covers the multi-way join path of the
// factorized trainer (resident caches + cross-relation gradient columns).
func TestParallelDeterminismMultiway(t *testing.T) {
	db := openDB(t)
	spec := synthMulti(t, db, 1200, []int{50, 20}, 2, []int{3, 2})
	cfg := Config{Hidden: []int{10}, Epochs: 2, Mode: Block}
	cfg.NumWorkers = 1
	r1, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NumWorkers = 4
	r4, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertNetsBitIdentical(t, "F-NN/multiway", r1, r4)
}

// TestParallelDeterminismShareLayer2 covers the §VI-A2 layer-2 sharing
// forward path, which uses extra per-chunk scratch in the parallel engine.
func TestParallelDeterminismShareLayer2(t *testing.T) {
	db := openDB(t)
	spec := synthBinary(t, db, 800, 40, 2, 3)
	cfg := Config{Hidden: []int{8, 6}, Epochs: 2, Act: Identity, ShareLayer2: true}
	cfg.NumWorkers = 1
	r1, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NumWorkers = 4
	r4, err := TrainF(db, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertNetsBitIdentical(t, "F-NN/share-layer2", r1, r4)
}
