package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestForwardFactorizedMatchesPredict checks that the exported factorized
// forward pass is exact versus the dense Predict over the assembled joined
// vector, and bit-identical to itself across cache states (recomputed
// partials are pure functions of the inputs).
func TestForwardFactorizedMatchesPredict(t *testing.T) {
	for _, tc := range []struct {
		name  string
		sizes []int
		act   Activation
		dims  []int // relation partition of the input width
	}{
		{"one-hidden/binary", []int{7, 9, 1}, Sigmoid, []int{3, 4}},
		{"two-hidden/3way", []int{10, 6, 5, 1}, Tanh, []int{4, 3, 3}},
		{"relu/no-fact-features", []int{5, 4, 1}, ReLU, []int{0, 2, 3}},
		{"single-layer", []int{6, 1}, Identity, []int{2, 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net, err := NewNetwork(tc.sizes, tc.act, 7)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			x := make([]float64, tc.sizes[0])
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			dS := tc.dims[0]
			nh0 := net.HiddenWidth()

			// Per-dimension partials at their column offsets.
			var parts [][]float64
			off := dS
			for _, dR := range tc.dims[1:] {
				part := make([]float64, nh0)
				net.PartialPreAct(part, off, x[off:off+dR])
				parts = append(parts, part)
				off += dR
			}

			fs := net.NewForwardScratch()
			got := net.ForwardFactorized(fs, x[:dS], parts)
			want := net.Predict(x)
			if d := math.Abs(got - want); d > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("ForwardFactorized = %v, Predict = %v (diff %g)", got, want, d)
			}

			// Recomputing the partials yields bit-identical output: partials
			// are pure functions, so cache hits and misses cannot differ.
			var parts2 [][]float64
			off = dS
			for _, dR := range tc.dims[1:] {
				part := make([]float64, nh0)
				net.PartialPreAct(part, off, x[off:off+dR])
				parts2 = append(parts2, part)
				off += dR
			}
			again := net.ForwardFactorized(fs, x[:dS], parts2)
			if again != got {
				t.Fatalf("recomputed partials changed the output: %v vs %v", again, got)
			}
		})
	}
}
