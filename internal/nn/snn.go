package nn

import (
	"fmt"
	"math/rand"
	"time"

	"factorml/internal/join"
	"factorml/internal/storage"
)

// TrainS is the baseline S-NN: identical training to M-NN, but each epoch
// re-executes the block-nested-loops join instead of reading a materialized
// T.
func TrainS(db *storage.Database, spec *join.Spec, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if !spec.S.Schema().HasTarget {
		return nil, fmt.Errorf("nn: fact table %q has no target column", spec.S.Schema().Name)
	}
	start := time.Now()
	io0 := db.Pool().Stats()

	sp := *spec
	if sp.BlockPages == 0 {
		sp.BlockPages = cfg.BlockPages
	}
	runner, err := join.NewRunner(&sp)
	if err != nil {
		return nil, err
	}

	// Count N once (a cheap fact-table property).
	n := int(sp.S.NumTuples())

	var shuffleRng *rand.Rand
	if cfg.ShuffleSeed != 0 {
		shuffleRng = rand.New(rand.NewSource(cfg.ShuffleSeed))
	}
	pass := func(onTuple func(x []float64, y float64) error, onBlockEnd func() error) error {
		if shuffleRng != nil {
			runner.Shuffle(shuffleRng) // one permutation per epoch (§VI)
		}
		d := sp.JoinedWidth()
		x := make([]float64, d)
		var block []*storage.Tuple
		return runner.Run(join.Callbacks{
			OnBlockStart: func(b []*storage.Tuple) error { block = b; return nil },
			OnMatch: func(s *storage.Tuple, r1Idx int, resIdx []int) error {
				nc := copy(x, s.Features)
				nc += copy(x[nc:], block[r1Idx].Features)
				for j, ri := range resIdx {
					nc += copy(x[nc:], runner.Resident(j)[ri].Features)
				}
				return onTuple(x, s.Target)
			},
			OnBlockEnd: onBlockEnd,
		})
	}

	net, err := initNetwork(cfg, sp.JoinedWidth())
	if err != nil {
		return nil, err
	}
	res := &Result{Net: net}
	if err := trainDense(pass, n, cfg, net, &res.Stats); err != nil {
		return nil, err
	}
	res.Stats.IO = db.Pool().Stats().Sub(io0)
	res.Stats.TrainTime = time.Since(start)
	return res, nil
}
