package nn

import (
	"fmt"
	"math/rand"
	"time"

	"factorml/internal/factor"
	"factorml/internal/join"
	"factorml/internal/storage"
)

// TrainS is the baseline S-NN: identical training to M-NN, but each epoch
// re-executes the block-nested-loops join (factor.StreamedSource) instead
// of reading a materialized T.
func TrainS(db *storage.Database, spec *join.Spec, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if !spec.S.Schema().HasTarget {
		return nil, fmt.Errorf("nn: fact table %q has no target column", spec.S.Schema().Name)
	}
	start := time.Now()
	io0 := db.Pool().Stats()

	src, err := factor.NewStreamedSource(spec, cfg.BlockPages)
	if err != nil {
		return nil, err
	}

	var shuffleRng *rand.Rand
	if cfg.ShuffleSeed != 0 {
		shuffleRng = rand.New(rand.NewSource(cfg.ShuffleSeed))
	}
	pass := func(onRow factor.RowFn, onGroupEnd func() error) error {
		if shuffleRng != nil {
			src.Shuffle(shuffleRng) // one permutation per epoch (§VI)
		}
		return src.ScanGroups(onRow, onGroupEnd)
	}

	net, err := initNetwork(cfg, src.Width())
	if err != nil {
		return nil, err
	}
	res := &Result{Net: net}
	if err := trainDense(pass, src.NumRows(), cfg, net, &res.Stats); err != nil {
		return nil, err
	}
	res.Stats.IO = db.Pool().Stats().Sub(io0)
	res.Stats.TrainTime = time.Since(start)
	return res, nil
}
