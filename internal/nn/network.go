package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"factorml/internal/core"
	"factorml/internal/linalg"
	"factorml/internal/plan"
	"factorml/internal/storage"
)

// Network is a fully connected feed-forward network with a scalar linear
// output and a shared hidden activation. Sizes = [d, nh1, …, nhL, 1].
type Network struct {
	Sizes []int
	W     []*linalg.Dense // W[l] has shape Sizes[l+1] × Sizes[l]
	B     [][]float64     // B[l] has length Sizes[l+1]
	Act   Activation
}

// NewNetwork builds a network with deterministic Xavier-style random
// weights from the seed. Identical seeds yield identical networks, which is
// what lets the M/S/F trainers start from the same parameters.
func NewNetwork(sizes []int, act Activation, seed int64) (*Network, error) {
	if len(sizes) < 2 {
		return nil, errors.New("nn: network needs at least input and output sizes")
	}
	for _, s := range sizes {
		if s < 1 {
			return nil, fmt.Errorf("nn: invalid layer size %d", s)
		}
	}
	if sizes[len(sizes)-1] != 1 {
		return nil, fmt.Errorf("nn: output size %d, want 1 (scalar regression)", sizes[len(sizes)-1])
	}
	rng := rand.New(rand.NewSource(seed))
	net := &Network{Sizes: append([]int{}, sizes...), Act: act}
	for l := 0; l+1 < len(sizes); l++ {
		w := linalg.NewDense(sizes[l+1], sizes[l])
		scale := 1 / math.Sqrt(float64(sizes[l]))
		for i := range w.Data() {
			w.Data()[i] = rng.NormFloat64() * scale
		}
		net.W = append(net.W, w)
		net.B = append(net.B, make([]float64, sizes[l+1]))
	}
	return net, nil
}

// Layers returns the number of weight layers.
func (n *Network) Layers() int { return len(n.W) }

// InputDim returns the expected feature dimensionality.
func (n *Network) InputDim() int { return n.Sizes[0] }

// Predict runs a forward pass for one input and returns the scalar output.
func (n *Network) Predict(x []float64) float64 {
	if len(x) != n.Sizes[0] {
		panic(fmt.Sprintf("nn: input dim %d, want %d", len(x), n.Sizes[0]))
	}
	cur := x
	for l := 0; l < n.Layers(); l++ {
		out := make([]float64, n.Sizes[l+1])
		linalg.MatVec(out, n.W[l], cur)
		linalg.VecAdd(out, out, n.B[l])
		if l < n.Layers()-1 {
			n.Act.Apply(out, out)
		}
		cur = out
	}
	return cur[0]
}

// Clone returns a deep copy.
func (n *Network) Clone() *Network {
	out := &Network{Sizes: append([]int{}, n.Sizes...), Act: n.Act}
	for l := range n.W {
		out.W = append(out.W, n.W[l].Clone())
		out.B = append(out.B, append([]float64{}, n.B[l]...))
	}
	return out
}

// MaxParamDiff returns the largest absolute parameter difference between
// two networks (∞ on shape mismatch).
func (n *Network) MaxParamDiff(o *Network) float64 {
	if n.Layers() != o.Layers() {
		return math.Inf(1)
	}
	max := 0.0
	for l := range n.W {
		r1, c1 := n.W[l].Dims()
		r2, c2 := o.W[l].Dims()
		if r1 != r2 || c1 != c2 {
			return math.Inf(1)
		}
		if d := n.W[l].MaxAbsDiff(o.W[l]); d > max {
			max = d
		}
		if d := linalg.MaxAbsDiffVec(n.B[l], o.B[l]); d > max {
			max = d
		}
	}
	return max
}

// BatchMode selects how often gradient steps are applied.
type BatchMode int

const (
	// Epoch applies one gradient step per full pass over the data
	// (full-batch gradient descent).
	Epoch BatchMode = iota
	// Block applies one gradient step per R1 block of the join — the
	// mini-batch regime whose batches coincide across M/S/F.
	Block
)

// Config controls training.
type Config struct {
	Hidden []int      // hidden layer sizes (default [50])
	Act    Activation // hidden activation (default Sigmoid)

	Epochs       int     // training epochs (default 10, matching the paper)
	LearningRate float64 // gradient step size (default 0.05)
	Mode         BatchMode
	Seed         int64 // weight init seed (default 1)

	// BlockPages is forwarded to the join spec (0 = join.DefaultBlockPages).
	BlockPages int

	// Init, when non-nil, warm-starts training from this network instead
	// of a fresh Xavier initialization: the trainer clones it and continues
	// SGD from there (Hidden, Act and Seed are then unused — the cloned
	// network fixes the architecture). Init.InputDim must match the joined
	// feature width. This is what the streaming subsystem's refresh path
	// uses to continue a served model on base+delta data.
	Init *Network

	// NumWorkers sets the size of the worker pool that parallelizes the
	// per-example forward/backward computation: 0 uses every CPU
	// (runtime.NumCPU()), 1 runs sequentially, n > 1 uses n workers. (The
	// factorml facade first resolves 0 to its database-wide
	// Options.NumWorkers default, which itself defaults to every CPU.) Chunk
	// geometry and gradient-merge order are independent of this knob (see
	// internal/parallel), so the trained network is bit-for-bit identical
	// for every value. The GroupedGradient extension keeps its sequential
	// implementation regardless of NumWorkers.
	NumWorkers int

	// ShuffleSeed, when non-zero, permutes R1's keys before every epoch —
	// the paper's SGD scheme (§VI). Combined with Mode == Block this gives
	// stochastic mini-batch training whose batch composition varies per
	// epoch. Supported by the streaming and factorized trainers (which
	// produce identical trajectories for the same seed); the materialized
	// trainer reads a fixed T and rejects it.
	ShuffleSeed int64

	// GroupedGradient enables the extension of DESIGN.md §6: the layer-1
	// weight gradient for dimension features is accumulated per dimension
	// tuple (Σ δ grouped, then one outer product per group) instead of per
	// joined tuple. Exact; changes operation counts only. F-NN only.
	GroupedGradient bool

	// ShareLayer2 enables the paper's §VI-A2 layer-2 sharing scheme.
	// Requires the Identity activation (the only additive one) and at
	// least two hidden layers. Exact but more expensive — implemented to
	// demonstrate the paper's cost analysis. F-NN only.
	ShareLayer2 bool
}

// DefaultHidden and DefaultEpochs are the architecture and epoch count
// used when the Config leaves them zero — exported so the strategy
// planner prices the same run the trainer would execute.
const (
	DefaultHidden = 50
	DefaultEpochs = 10
)

func (c Config) withDefaults() Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{DefaultHidden}
	}
	if c.Epochs == 0 {
		c.Epochs = DefaultEpochs
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) validate() error {
	for _, h := range c.Hidden {
		if h < 1 {
			return fmt.Errorf("nn: invalid hidden size %d", h)
		}
	}
	if c.Epochs < 0 || c.LearningRate <= 0 {
		return errors.New("nn: invalid Epochs/LearningRate")
	}
	if c.ShareLayer2 {
		if !c.Act.Additive() {
			return fmt.Errorf("nn: ShareLayer2 requires an additive activation, got %s (paper §VI-A2)", c.Act)
		}
		if len(c.Hidden) < 2 {
			return errors.New("nn: ShareLayer2 requires at least two hidden layers")
		}
	}
	return nil
}

func (c Config) sizes(d int) []int {
	sizes := append([]int{d}, c.Hidden...)
	return append(sizes, 1)
}

// initNetwork returns the network training starts from: a clone of the
// warm-start network when cfg.Init is set (so the caller's copy is never
// mutated by training), or a fresh seeded initialization otherwise.
func initNetwork(cfg Config, d int) (*Network, error) {
	if cfg.Init != nil {
		if got := cfg.Init.InputDim(); got != d {
			return nil, fmt.Errorf("nn: warm-start network has input dim %d, dataset joins to %d", got, d)
		}
		return cfg.Init.Clone(), nil
	}
	return NewNetwork(cfg.sizes(d), cfg.Act, cfg.Seed)
}

// Stats reports how training went.
type Stats struct {
	Epochs    int
	Loss      []float64 // mean squared-error loss per epoch: 1/(2N) Σ (o−y)²
	Ops       core.Ops
	IO        storage.IOStats
	TrainTime time.Duration

	// Plan, when training was strategy-planned (factorml.Auto), records
	// the planner's decision: the chosen strategy plus the per-strategy
	// cost estimates it ranked. Nil when the caller picked the strategy.
	Plan *plan.Plan
}

// Result bundles the trained network with its statistics.
type Result struct {
	Net   *Network
	Stats Stats
}

// FinalLoss returns the last epoch's loss (+Inf if none recorded).
func (s *Stats) FinalLoss() float64 {
	if len(s.Loss) == 0 {
		return math.Inf(1)
	}
	return s.Loss[len(s.Loss)-1]
}
