package factorml

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// newRetailServer trains and saves a model over buildRetail's star schema
// and stands up the redesigned facade server with the given options.
func newRetailServer(t *testing.T, opts ...ServerOption) (*Server, *httptest.Server) {
	t.Helper()
	db := openDB(t)
	ds := buildRetail(t, db, 150, 8)
	nres, err := TrainNN(ds, Factorized, NNConfig{Hidden: []int{6}, Epochs: 2, NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SaveNN("retail-nn", nres.Net); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(db, []string{"items"}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestNewServerFullStack exercises the redesigned constructor with every
// option at once: the versioned data plane (predict/ingest/refresh), the
// canonical operational endpoints (/healthz, /readyz, /statsz, /metrics),
// admission-control wiring, and the unified error envelope.
func TestNewServerFullStack(t *testing.T) {
	srv, ts := newRetailServer(t,
		WithEngineConfig(ServeConfig{NumWorkers: 2}),
		WithStream("orders", StreamPolicy{NumWorkers: 1}),
		WithLimits(Limits{MaxInFlightPerModel: 8, MaxQueuedIngest: 8}),
		WithMetrics(),
	)
	if srv.Stream() == nil {
		t.Fatal("WithStream left Stream() nil")
	}
	if srv.Metrics() == nil {
		t.Fatal("WithMetrics left Metrics() nil")
	}

	// Predict through /v1/.
	resp, err := http.Post(ts.URL+"/v1/models/retail-nn/predict", "application/json",
		strings.NewReader(`{"rows":[{"fact":[1.5,10],"fks":[3]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}

	// Ingest + refresh through /v1/ (wired by WithStream).
	resp, err = http.Post(ts.URL+"/v1/ingest", "application/json",
		strings.NewReader(`{"facts":[{"sid":9000,"fks":[2],"features":[1.5,3],"target":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	resp, err = http.Post(ts.URL+"/v1/refresh", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh status %d: %s", resp.StatusCode, body)
	}

	// Canonical unversioned endpoints.
	for _, path := range []string{"/healthz", "/readyz", "/statsz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
	}

	// The exposition carries serving, engine and stream families.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, needle := range []string{
		"# TYPE factorml_http_requests_total counter",
		"# TYPE factorml_http_request_duration_seconds histogram",
		`factorml_http_requests_total{endpoint="predict",code="200"}`,
		"factorml_engine_dim_cache_hit_rate",
		"factorml_stream_ingest_queue_depth",
		"factorml_stream_refreshes_total 1",
	} {
		if !strings.Contains(string(text), needle) {
			t.Fatalf("exposition missing %q:\n%s", needle, text)
		}
	}

	// Readiness flips without affecting liveness, with the envelope on
	// the not-ready path.
	srv.SetReady(false)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || envelope.Error.Code != "not_ready" {
		t.Fatalf("drained readyz: status %d code %q", resp.StatusCode, envelope.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("not_ready without Retry-After")
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("liveness followed readiness down: %d", resp.StatusCode)
	}
	srv.SetReady(true)
}

// TestServerEnvelopeOnFacade pins the unified error envelope through the
// public constructor for a sample of failure paths (the exhaustive
// per-endpoint matrix lives in internal/serve).
func TestServerEnvelopeOnFacade(t *testing.T) {
	_, ts := newRetailServer(t)
	cases := []struct {
		name, method, path, body string
		status                   int
		code                     string
	}{
		{"unknown model", "POST", "/v1/models/absent/predict", `{"rows":[{"fact":[1,2],"fks":[3]}]}`, 404, "model_not_found"},
		{"malformed body", "POST", "/v1/models/retail-nn/predict", `{nope`, 400, "invalid_request"},
		{"ingest without stream", "POST", "/v1/ingest", `{"facts":[]}`, 503, "stream_disabled"},
		{"refresh without stream", "POST", "/v1/refresh", ``, 503, "stream_disabled"},
		{"unknown route", "GET", "/v2/nope", ``, 404, "not_found"},
		{"wrong method", "PUT", "/v1/ingest", ``, 405, "method_not_allowed"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var envelope struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&envelope)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: non-JSON error body: %v", tc.name, err)
		}
		if resp.StatusCode != tc.status || envelope.Error.Code != tc.code {
			t.Fatalf("%s: status %d code %q, want %d %q", tc.name, resp.StatusCode, envelope.Error.Code, tc.status, tc.code)
		}
		if envelope.Error.Message == "" {
			t.Fatalf("%s: empty error message", tc.name)
		}
	}
}

// TestServerConcurrentMetricsScrapes scrapes /metrics continuously while
// predict, ingest and refresh traffic runs — under -race this pins the
// whole observability path: atomics on the request path, sync.Map metric
// children, and the scrape-time snapshot collectors over engine and
// stream state.
func TestServerConcurrentMetricsScrapes(t *testing.T) {
	_, ts := newRetailServer(t,
		WithEngineConfig(ServeConfig{NumWorkers: 2}),
		WithStream("orders", StreamPolicy{NumWorkers: 1}),
		WithLimits(Limits{MaxInFlightPerModel: 16, MaxQueuedIngest: 16}),
		WithMetrics(),
	)

	do := func(method, path, body string) (int, error) {
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			return 0, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	var wg sync.WaitGroup
	const iters = 12
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) { // predict traffic
			defer wg.Done()
			for i := 0; i < iters; i++ {
				code, err := do("POST", "/v1/models/retail-nn/predict",
					fmt.Sprintf(`{"rows":[{"fact":[%d.5,10],"fks":[%d]}]}`, i%5, i%8))
				if err != nil || (code != 200 && code != 429) {
					t.Errorf("goroutine %d: predict %d %v", g, code, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // ingest traffic, unique sids
		defer wg.Done()
		for i := 0; i < iters; i++ {
			code, err := do("POST", "/v1/ingest",
				fmt.Sprintf(`{"facts":[{"sid":%d,"fks":[%d],"features":[1,2],"target":0.5}]}`, 10_000+i, i%8))
			if err != nil || (code != 200 && code != 429) {
				t.Errorf("ingest: %d %v", code, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // refresh traffic
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if code, err := do("POST", "/v1/refresh", ""); err != nil || code != 200 {
				t.Errorf("refresh: %d %v", code, err)
				return
			}
		}
	}()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() { // concurrent scrapers
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if code, err := do("GET", "/metrics", ""); err != nil || code != 200 {
					t.Errorf("scrape: %d %v", code, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// After the dust settles the exposition must reflect the traffic.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), `factorml_http_requests_total{endpoint="predict",code="200"}`) {
		t.Fatalf("no predict requests recorded:\n%s", text)
	}
	if !strings.Contains(string(text), "factorml_stream_facts_total") {
		t.Fatalf("no stream counters in exposition:\n%s", text)
	}
}

// TestDeprecatedConstructorsStillServe keeps the pre-redesign entry
// points green: both wrappers must compile against their old signatures
// and serve predictions with the same bits as the redesigned server.
func TestDeprecatedConstructorsStillServe(t *testing.T) {
	db := openDB(t)
	ds := buildRetail(t, db, 120, 8)
	nres, err := TrainNN(ds, Factorized, NNConfig{Hidden: []int{4}, Epochs: 1, NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SaveNN("old-nn", nres.Net); err != nil {
		t.Fatal(err)
	}

	var plain http.Handler
	plain, err = NewPredictionServer(db, []string{"items"}, ServeConfig{NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var streaming http.Handler
	var st *Stream
	streaming, st, err = NewStreamingPredictionServer(db, "orders", []string{"items"}, ServeConfig{NumWorkers: 1}, StreamPolicy{NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || len(st.Attached()) == 0 {
		t.Fatalf("streaming wrapper attached nothing: %+v", st)
	}

	body := `{"rows":[{"fact":[1.5,10],"fks":[3]}]}`
	outputs := make([]float64, 0, 2)
	for _, h := range []http.Handler{plain, streaming} {
		ts := httptest.NewServer(h)
		resp, err := http.Post(ts.URL+"/v1/models/old-nn/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Predictions []struct {
				Output *float64 `json:"output"`
			} `json:"predictions"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		ts.Close()
		if err != nil || resp.StatusCode != http.StatusOK || len(out.Predictions) != 1 || out.Predictions[0].Output == nil {
			t.Fatalf("deprecated wrapper predict failed: status %d err %v out %+v", resp.StatusCode, err, out)
		}
		outputs = append(outputs, *out.Predictions[0].Output)
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("wrappers disagree: %v vs %v, want bit-identical", outputs[0], outputs[1])
	}
}
