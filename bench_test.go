package factorml

// Benchmark harness: one benchmark family per figure and table of the
// paper's evaluation (§VII), each with M/S/F sub-benchmarks so the relative
// costs can be read directly from `go test -bench`. Workloads are scaled
// down from the paper (see EXPERIMENTS.md); tuple ratios — the quantity the
// speedups depend on — are preserved. The full sweeps behind each figure
// are produced by `go run ./cmd/experiments`.

import (
	"fmt"
	"testing"

	"factorml/internal/data"
	"factorml/internal/experiments"
	"factorml/internal/gmm"
	"factorml/internal/join"
	"factorml/internal/nn"
	"factorml/internal/storage"
)

const (
	benchNR  = 100 // dimension cardinality (paper: 1000)
	benchDS  = 5
	benchK   = 5
	benchNH  = 50
	benchIt  = 2 // EM iterations per train
	benchEp  = 2 // NN epochs per train
	benchNR2 = 40
	benchDR2 = 4
)

func benchDB(b *testing.B) *storage.Database {
	b.Helper()
	db, err := storage.Open(b.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

func benchSpec(b *testing.B, db *storage.Database, name string, nS int, nR, dR []int, target bool) *join.Spec {
	b.Helper()
	spec, err := data.Generate(db, name, data.SynthConfig{
		NS: nS, NR: nR, DS: benchDS, DR: dR, Seed: 3, WithTarget: target,
	})
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

func gmmTrainers() map[string]func(*storage.Database, *join.Spec, gmm.Config) (*gmm.Result, error) {
	return map[string]func(*storage.Database, *join.Spec, gmm.Config) (*gmm.Result, error){
		"M-GMM": gmm.TrainM, "S-GMM": gmm.TrainS, "F-GMM": gmm.TrainF,
	}
}

func nnTrainers() map[string]func(*storage.Database, *join.Spec, nn.Config) (*nn.Result, error) {
	return map[string]func(*storage.Database, *join.Spec, nn.Config) (*nn.Result, error){
		"M-NN": nn.TrainM, "S-NN": nn.TrainS, "F-NN": nn.TrainF,
	}
}

var gmmAlgoOrder = []string{"M-GMM", "S-GMM", "F-GMM"}
var nnAlgoOrder = []string{"M-NN", "S-NN", "F-NN"}

func benchGMMPoint(b *testing.B, label string, nS int, nR, dR []int, k int) {
	b.Helper()
	db := benchDB(b)
	spec := benchSpec(b, db, "w", nS, nR, dR, false)
	cfg := gmm.Config{K: k, MaxIter: benchIt, Tol: 1e-300}
	trainers := gmmTrainers()
	for _, algo := range gmmAlgoOrder {
		train := trainers[algo]
		b.Run(fmt.Sprintf("%s/%s", label, algo), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := train(db, spec, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchNNPoint(b *testing.B, label string, nS int, nR, dR []int, nh int) {
	b.Helper()
	db := benchDB(b)
	spec := benchSpec(b, db, "w", nS, nR, dR, true)
	cfg := nn.Config{Hidden: []int{nh}, Epochs: benchEp}
	trainers := nnTrainers()
	for _, algo := range nnAlgoOrder {
		train := trainers[algo]
		b.Run(fmt.Sprintf("%s/%s", label, algo), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := train(db, spec, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 3: GMM, binary join -----------------------------------------

func BenchmarkFig3a_GMMVaryRR(b *testing.B) {
	for _, rr := range []int{50, 200} {
		benchGMMPoint(b, fmt.Sprintf("rr=%d", rr), rr*benchNR, []int{benchNR}, []int{15}, benchK)
	}
}

func BenchmarkFig3b_GMMVaryDR(b *testing.B) {
	for _, dR := range []int{5, 15} {
		benchGMMPoint(b, fmt.Sprintf("dR=%d", dR), 100*benchNR, []int{benchNR}, []int{dR}, benchK)
	}
}

func BenchmarkFig3c_GMMVaryK(b *testing.B) {
	for _, k := range []int{2, 5} {
		benchGMMPoint(b, fmt.Sprintf("K=%d", k), 100*benchNR, []int{benchNR}, []int{15}, k)
	}
}

// --- Figure 4: GMM, multi-way join ---------------------------------------

func BenchmarkFig4a_GMMMultiVaryRR(b *testing.B) {
	for _, rr := range []int{50, 200} {
		benchGMMPoint(b, fmt.Sprintf("rr=%d", rr), rr*benchNR,
			[]int{benchNR, benchNR2}, []int{15, benchDR2}, benchK)
	}
}

func BenchmarkFig4b_GMMMultiVaryDR1(b *testing.B) {
	for _, dR1 := range []int{5, 15} {
		benchGMMPoint(b, fmt.Sprintf("dR1=%d", dR1), 100*benchNR,
			[]int{benchNR, benchNR2}, []int{dR1, benchDR2}, benchK)
	}
}

func BenchmarkFig4c_GMMMultiVaryK(b *testing.B) {
	for _, k := range []int{2, 5} {
		benchGMMPoint(b, fmt.Sprintf("K=%d", k), 100*benchNR,
			[]int{benchNR, benchNR2}, []int{15, benchDR2}, k)
	}
}

// --- Figure 5: NN, binary join --------------------------------------------

func BenchmarkFig5a_NNVaryRR(b *testing.B) {
	for _, rr := range []int{50, 200} {
		benchNNPoint(b, fmt.Sprintf("rr=%d", rr), rr*benchNR, []int{benchNR}, []int{15}, benchNH)
	}
}

func BenchmarkFig5b_NNVaryDR(b *testing.B) {
	for _, dR := range []int{5, 15} {
		benchNNPoint(b, fmt.Sprintf("dR=%d", dR), 100*benchNR, []int{benchNR}, []int{dR}, benchNH)
	}
}

func BenchmarkFig5c_NNVaryNH(b *testing.B) {
	for _, nh := range []int{25, 50} {
		benchNNPoint(b, fmt.Sprintf("nh=%d", nh), 100*benchNR, []int{benchNR}, []int{15}, nh)
	}
}

// --- Figure 6: NN, multi-way join -----------------------------------------

func BenchmarkFig6a_NNMultiVaryRR(b *testing.B) {
	for _, rr := range []int{50, 200} {
		benchNNPoint(b, fmt.Sprintf("rr=%d", rr), rr*benchNR,
			[]int{benchNR, benchNR2}, []int{15, benchDR2}, benchNH)
	}
}

func BenchmarkFig6b_NNMultiVaryDR1(b *testing.B) {
	for _, dR1 := range []int{5, 15} {
		benchNNPoint(b, fmt.Sprintf("dR1=%d", dR1), 100*benchNR,
			[]int{benchNR, benchNR2}, []int{dR1, benchDR2}, benchNH)
	}
}

func BenchmarkFig6c_NNMultiVaryNH(b *testing.B) {
	for _, nh := range []int{25, 50} {
		benchNNPoint(b, fmt.Sprintf("nh=%d", nh), 100*benchNR,
			[]int{benchNR, benchNR2}, []int{15, benchDR2}, nh)
	}
}

// --- Table VI: GMM on (simulated) real datasets ---------------------------

func BenchmarkTable6_GMMRealDatasets(b *testing.B) {
	const scale = 0.002
	for _, name := range []string{"Expedia1", "Expedia2", "Walmart", "Movies",
		"Expedia3", "Expedia4", "Expedia5", "Movies3way"} {
		shape, err := data.ShapeByName(name)
		if err != nil {
			b.Fatal(err)
		}
		db := benchDB(b)
		spec, err := data.GenerateShape(db, shape, scale, 7)
		if err != nil {
			b.Fatal(err)
		}
		cfg := gmm.Config{K: benchK, MaxIter: benchIt, Tol: 1e-300}
		trainers := gmmTrainers()
		for _, algo := range gmmAlgoOrder {
			train := trainers[algo]
			b.Run(fmt.Sprintf("%s/%s", name, algo), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := train(db, spec, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Table VII: NN on (simulated) sparse real datasets ---------------------

func BenchmarkTable7_NNRealDatasets(b *testing.B) {
	const scale = 0.002
	for _, name := range []string{"WalmartSparse", "MoviesSparse", "Movies3waySparse"} {
		shape, err := data.ShapeByName(name)
		if err != nil {
			b.Fatal(err)
		}
		db := benchDB(b)
		spec, err := data.GenerateShape(db, shape, scale, 7)
		if err != nil {
			b.Fatal(err)
		}
		cfg := nn.Config{Hidden: []int{benchNH}, Epochs: benchEp}
		trainers := nnTrainers()
		for _, algo := range nnAlgoOrder {
			train := trainers[algo]
			b.Run(fmt.Sprintf("%s/%s", name, algo), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := train(db, spec, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Ablations (DESIGN.md §6) ----------------------------------------------

// The paper's §VI-A2 claim: sharing computation at the second layer costs
// more than it saves, even when the activation is additive.
func BenchmarkAblationLayer2Sharing(b *testing.B) {
	db := benchDB(b)
	spec := benchSpec(b, db, "w", 100*benchNR, []int{benchNR}, []int{15}, true)
	for _, mode := range []struct {
		name  string
		share bool
	}{{"layer1-only", false}, {"share-layer2", true}} {
		cfg := nn.Config{Hidden: []int{benchNH, benchNH}, Act: nn.Identity,
			Epochs: benchEp, ShareLayer2: mode.share}
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := nn.TrainF(db, spec, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Grouped-gradient extension: accumulating the layer-1 dimension gradient
// per group (beyond the paper's Eq. 29 analysis).
func BenchmarkAblationGroupedGradient(b *testing.B) {
	db := benchDB(b)
	spec := benchSpec(b, db, "w", 100*benchNR, []int{benchNR}, []int{15}, true)
	for _, mode := range []struct {
		name    string
		grouped bool
	}{{"per-tuple", false}, {"grouped", true}} {
		cfg := nn.Config{Hidden: []int{benchNH}, Epochs: benchEp, GroupedGradient: mode.grouped}
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := nn.TrainF(db, spec, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// §V-A block-size sensitivity: one streaming pass over the join as the BNL
// block shrinks (S is rescanned once per block).
func BenchmarkAblationBlockPages(b *testing.B) {
	db := benchDB(b)
	spec := benchSpec(b, db, "w", 5000, []int{3000}, []int{4}, false)
	for _, bp := range []int{1, 4, 64} {
		sp := *spec
		sp.BlockPages = bp
		model := experiments.ModelFor(&sp, 1)
		b.Run(fmt.Sprintf("blockPages=%d", bp), func(b *testing.B) {
			runner, err := join.NewRunner(&sp)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := join.StreamWith(runner, func(int64, []float64, float64) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(model.JoinPass()), "pages/pass")
		})
	}
}

// Raw join throughput: factorized iteration vs concatenating stream vs
// index probe.
func BenchmarkJoinAccessPaths(b *testing.B) {
	db := benchDB(b)
	spec := benchSpec(b, db, "w", 20000, []int{200}, []int{15}, false)
	b.Run("stream-concat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := join.Stream(spec, func(int64, []float64, float64) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("factorized-callbacks", func(b *testing.B) {
		runner, err := join.NewRunner(spec)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			err := runner.Run(join.Callbacks{
				OnMatch: func(*storage.Tuple, int, []int) error { return nil },
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("index-probe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := join.IndexedStream(spec, func(int64, []float64, float64) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
}
