package factorml

// Serving-throughput benchmark: the factorized prediction engine is timed
// over a fixed request batch at 1 and N workers for both model families,
// and the measurements are flushed to BENCH_serve.json (uploaded as a CI
// artifact alongside BENCH_parallel.json; see TestMain).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"factorml/internal/data"
	"factorml/internal/gmm"
	"factorml/internal/nn"
	"factorml/internal/serve"
)

// serveBenchRecord is one (model, workers) throughput measurement in
// BENCH_serve.json.
type serveBenchRecord struct {
	Model      string  `json:"model"`
	Workers    int     `json:"workers"`
	BatchRows  int     `json:"batch_rows"`
	NsPerOp    float64 `json:"ns_per_op"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

var serveBenchRecorder struct {
	mu      sync.Mutex
	order   []string
	records map[string]serveBenchRecord
}

// recordServeBench keeps the latest measurement per (model, workers) — the
// testing package re-invokes benchmark bodies while calibrating b.N.
func recordServeBench(rec serveBenchRecord) {
	serveBenchRecorder.mu.Lock()
	defer serveBenchRecorder.mu.Unlock()
	key := fmt.Sprintf("%s/%d", rec.Model, rec.Workers)
	if serveBenchRecorder.records == nil {
		serveBenchRecorder.records = make(map[string]serveBenchRecord)
	}
	if _, seen := serveBenchRecorder.records[key]; !seen {
		serveBenchRecorder.order = append(serveBenchRecorder.order, key)
	}
	serveBenchRecorder.records[key] = rec
}

// flushServeBench writes the serving measurements to BENCH_serve.json
// (called from TestMain).
func flushServeBench() {
	serveBenchRecorder.mu.Lock()
	records := make([]serveBenchRecord, 0, len(serveBenchRecorder.order))
	for _, key := range serveBenchRecorder.order {
		records = append(records, serveBenchRecorder.records[key])
	}
	serveBenchRecorder.mu.Unlock()
	if len(records) == 0 {
		return
	}
	out := struct {
		Unit    string             `json:"unit"`
		NumCPU  int                `json:"num_cpu"`
		Results []serveBenchRecord `json:"results"`
	}{Unit: "ns per batch", NumCPU: runtime.NumCPU(), Results: records}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_serve.json", append(blob, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: writing BENCH_serve.json: %v\n", err)
	}
}

// Serving workload: enough rows per batch to amortize pool startup, with
// rr = nS/nR = 25 repeated foreign keys per dimension tuple so the
// dimension cache carries the factorization payoff.
const (
	benchServeNS = 5000
	benchServeNR = 200
	benchServeDS = 10
	benchServeDR = 10
)

// BenchmarkServeThroughput times Engine.Predict over a full fact-table
// batch per op, sweeping worker counts for both model families.
func BenchmarkServeThroughput(b *testing.B) {
	db := benchDB(b)
	spec, err := data.Generate(db, "sv", data.SynthConfig{
		NS: benchServeNS, NR: []int{benchServeNR}, DS: benchServeDS, DR: []int{benchServeDR},
		Seed: 3, WithTarget: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	nres, err := nn.TrainF(db, spec, nn.Config{Hidden: []int{benchNH}, Epochs: 1, NumWorkers: 1})
	if err != nil {
		b.Fatal(err)
	}
	gres, err := gmm.TrainF(db, spec, gmm.Config{K: 4, MaxIter: 1, Tol: 1e-300, NumWorkers: 1})
	if err != nil {
		b.Fatal(err)
	}
	reg, err := serve.NewRegistry(db)
	if err != nil {
		b.Fatal(err)
	}
	if err := reg.SaveNN("bench-nn", nres.Net); err != nil {
		b.Fatal(err)
	}
	if err := reg.SaveGMM("bench-gmm", gres.Model); err != nil {
		b.Fatal(err)
	}

	var rows []serve.Row
	sc := spec.S.NewScanner()
	for sc.Next() {
		tp := sc.Tuple()
		rows = append(rows, serve.Row{
			Fact: append([]float64{}, tp.Features...),
			FKs:  append([]int64{}, tp.Keys[1:]...),
		})
	}
	if err := sc.Err(); err != nil {
		b.Fatal(err)
	}

	for _, model := range []string{"bench-nn", "bench-gmm"} {
		for _, workers := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("%s/workers=%d", model, workers), func(b *testing.B) {
				eng, err := serve.NewEngine(reg, spec.Plan(), serve.EngineConfig{NumWorkers: workers})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					preds, _, err := eng.Predict(model, rows)
					if err != nil {
						b.Fatal(err)
					}
					if preds[0].Err != "" {
						b.Fatal(preds[0].Err)
					}
				}
				nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				recordServeBench(serveBenchRecord{
					Model: model, Workers: workers, BatchRows: len(rows),
					NsPerOp:    nsPerOp,
					RowsPerSec: float64(len(rows)) / (nsPerOp / 1e9),
				})
			})
		}
	}
}
