package factorml

// Streaming-ingestion benchmark: the incremental refresh (delta E-step +
// M-step from maintained statistics) is timed against the full statistics
// recompute over the whole table, and the measurements are flushed to
// BENCH_stream.json (uploaded as a CI artifact alongside
// BENCH_parallel.json and BENCH_serve.json; see TestMain). The gap
// between the two phases is the tentpole claim in numbers: refresh cost
// proportional to the delta, not the dataset.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"factorml/internal/core"
	"factorml/internal/data"
	"factorml/internal/gmm"
	"factorml/internal/join"
	"factorml/internal/storage"
	"factorml/internal/stream"
)

// streamBenchRecord is one (phase, workers) measurement in
// BENCH_stream.json.
type streamBenchRecord struct {
	Phase      string  `json:"phase"`
	Workers    int     `json:"workers"`
	DeltaRows  int     `json:"delta_rows,omitempty"`
	BaseRows   int     `json:"base_rows"`
	NsPerOp    float64 `json:"ns_per_op"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

var streamBenchRecorder struct {
	mu      sync.Mutex
	order   []string
	records map[string]streamBenchRecord
}

func recordStreamBench(rec streamBenchRecord) {
	streamBenchRecorder.mu.Lock()
	defer streamBenchRecorder.mu.Unlock()
	key := fmt.Sprintf("%s/%d", rec.Phase, rec.Workers)
	if streamBenchRecorder.records == nil {
		streamBenchRecorder.records = make(map[string]streamBenchRecord)
	}
	if _, seen := streamBenchRecorder.records[key]; !seen {
		streamBenchRecorder.order = append(streamBenchRecorder.order, key)
	}
	streamBenchRecorder.records[key] = rec
}

// flushStreamBench writes the streaming measurements to BENCH_stream.json
// (called from TestMain).
func flushStreamBench() {
	streamBenchRecorder.mu.Lock()
	records := make([]streamBenchRecord, 0, len(streamBenchRecorder.order))
	for _, key := range streamBenchRecorder.order {
		records = append(records, streamBenchRecorder.records[key])
	}
	streamBenchRecorder.mu.Unlock()
	if len(records) == 0 {
		return
	}
	out := struct {
		Unit    string              `json:"unit"`
		NumCPU  int                 `json:"num_cpu"`
		Results []streamBenchRecord `json:"results"`
	}{Unit: "ns per refresh", NumCPU: runtime.NumCPU(), Results: records}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_stream.json", append(blob, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: writing BENCH_stream.json: %v\n", err)
	}
}

// Streaming workload: a base large enough that a full recompute visibly
// dwarfs the per-delta work.
const (
	benchStreamBase  = 20000
	benchStreamNR    = 200
	benchStreamDelta = 200
	benchStreamK     = 4
)

func benchStreamSetup(b *testing.B) (*storage.Database, *join.Spec, core.Partition, *join.Resolver, []*join.ResidentIndex, *gmm.Model) {
	b.Helper()
	db := benchDB(b)
	spec, err := data.Generate(db, "strm", data.SynthConfig{
		NS: benchStreamBase, NR: []int{benchStreamNR}, DS: benchDS, DR: []int{10},
		Seed: 3, WithTarget: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := core.NewPartition([]int{benchDS, 10})
	res, err := gmm.TrainF(db, spec, gmm.Config{K: benchStreamK, MaxIter: 1, Tol: 1e-300, NumWorkers: 1})
	if err != nil {
		b.Fatal(err)
	}
	var idxs []*join.ResidentIndex
	for _, r := range spec.Rs {
		ix, err := join.BuildResidentIndex(r)
		if err != nil {
			b.Fatal(err)
		}
		idxs = append(idxs, ix)
	}
	plan := spec.Plan()
	rv, err := join.NewResolver(plan.Parent, plan.Ref, idxs)
	if err != nil {
		b.Fatal(err)
	}
	return db, spec, p, rv, idxs, res.Model
}

// BenchmarkStreamIngest sweeps the two refresh phases at 1 and N workers:
//
//	ingest+refresh-incremental — append benchStreamDelta fact rows, absorb
//	  them into the maintained statistics and run the M-step (∝ delta)
//	refresh-full — recompute the statistics over the whole table from
//	  scratch and run the M-step (∝ dataset: the baseline the incremental
//	  path is bit-identical to)
func BenchmarkStreamIngest(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("incremental/workers=%d", workers), func(b *testing.B) {
			_, spec, p, rv, idxs, model := benchStreamSetup(b)
			st := stream.NewGMMStats(p, model.K)
			if err := st.Absorb(model, spec.S, rv, workers); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(99))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				appendBenchDelta(b, spec, rng, benchStreamDelta)
				b.StartTimer()
				if err := st.Absorb(model, spec.S, rv, workers); err != nil {
					b.Fatal(err)
				}
				if _, err := st.Step(model, idxs, 1e-6); err != nil {
					b.Fatal(err)
				}
			}
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			recordStreamBench(streamBenchRecord{
				Phase: "ingest+refresh-incremental", Workers: workers,
				DeltaRows: benchStreamDelta, BaseRows: benchStreamBase, NsPerOp: nsPerOp,
				RowsPerSec: float64(benchStreamDelta) / (nsPerOp / 1e9),
			})
		})
		b.Run(fmt.Sprintf("full/workers=%d", workers), func(b *testing.B) {
			_, spec, p, rv, idxs, model := benchStreamSetup(b)
			n := int(spec.S.NumTuples())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := stream.NewGMMStats(p, model.K)
				if err := st.Absorb(model, spec.S, rv, workers); err != nil {
					b.Fatal(err)
				}
				if _, err := st.Step(model, idxs, 1e-6); err != nil {
					b.Fatal(err)
				}
			}
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			recordStreamBench(streamBenchRecord{
				Phase: "refresh-full", Workers: workers,
				BaseRows: n, NsPerOp: nsPerOp,
				RowsPerSec: float64(n) / (nsPerOp / 1e9),
			})
		})
	}
}

func appendBenchDelta(b *testing.B, spec *join.Spec, rng *rand.Rand, n int) {
	b.Helper()
	base := spec.S.NumTuples()
	feats := make([]float64, benchDS)
	for i := 0; i < n; i++ {
		for d := range feats {
			feats[d] = rng.NormFloat64()
		}
		tp := &storage.Tuple{
			Keys:     []int64{base + int64(i), int64(rng.Intn(benchStreamNR))},
			Features: feats,
			Target:   rng.NormFloat64(),
		}
		if err := spec.S.Append(tp); err != nil {
			b.Fatal(err)
		}
	}
	if err := spec.S.Flush(); err != nil {
		b.Fatal(err)
	}
}
