# Single source of truth for the commands CI runs — invoke the same
# targets locally before pushing.

GO ?= go

# Total-statement-coverage floor enforced by `make cover` (see
# scripts/check_coverage.sh; raised with the monitoring PR).
COVERAGE_BASELINE ?= 71.0

.PHONY: all build test race bench cover serve-smoke stream-smoke snowflake-smoke load-smoke drift-smoke crash-smoke fmt vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every benchmark, no unit tests. The
# parallel sweep writes BENCH_parallel.json (ns/op per algorithm x workers),
# the serving sweep writes BENCH_serve.json (rows/sec per model x workers),
# the streaming sweep writes BENCH_stream.json (incremental vs full
# refresh cost x workers), the planner sweep writes BENCH_plan.json
# (estimated vs measured cost per strategy on three schema shapes), the
# trace sweep writes BENCH_trace.json (span overhead with allocs/op;
# the untraced span path fails the run if it allocates at all) and the
# monitor sweep writes BENCH_monitor.json (sketch-maintenance overhead;
# the disabled observation path fails the run if it allocates at all)
# and the durability sweep writes BENCH_wal.json (group-commit fsync
# batching at 1/8/64 writers, WAL-off vs WAL-on ingest; the WAL-disabled
# hook path fails the run if it allocates at all)
# and the kernel sweep writes BENCH_kernels.json (fused vs unfused GMM
# E-step rows/sec, fused linalg helpers, steady-state engine predict
# with allocs/op — pinned to exactly 0 by TestPredictZeroAlloc).
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' .

# Serving smoke: datagen a tiny star schema, train -save both model kinds,
# boot cmd/serve and curl /healthz + predictions + /statsz.
serve-smoke:
	./scripts/serve_smoke.sh

# Streaming smoke: datagen -> train -> boot cmd/serve -fact -> ingest
# deltas over HTTP -> dimension update changes predictions live, the
# refresh-rows policy republishes the model, /statsz shows the counters.
stream-smoke:
	./scripts/stream_smoke.sh

# Load smoke: boot cmd/serve with admission control + metrics, drive a
# mixed predict/ingest/refresh ramp with cmd/loadgen, check the
# BENCH_load.json report (p50/p99/p999, saturation throughput), that
# overload answers structured 429s only, and that /metrics is valid
# Prometheus text format. CI uploads BENCH_load.json as an artifact.
load-smoke:
	./scripts/load_smoke.sh

# Drift smoke: train -save captures a baseline into the model's lineage,
# cmd/serve boots with health monitoring, a shifted delta ingested over
# HTTP flips GET /v1/models/{name}/health to "drifting" with the PSI
# gauges visible in /metrics, and a refresh restores "fresh".
drift-smoke:
	./scripts/drift_smoke.sh

# Crash smoke: boot cmd/serve with -wal-dir, drive ingest traffic with
# cmd/loadgen plus explicit acked batches, kill -9 the server process
# mid-traffic, reboot on the same directory, and assert /readyz returns,
# the recovered LSN covers every acknowledged record (zero acked-row
# loss), model health lineage is consistent, and the WAL telemetry is
# live.
crash-smoke:
	./scripts/crash_smoke.sh

# Snowflake smoke: the runnable multi-hop hierarchy example — builds
# orders ⋈ items ⋈ categories ⋈ suppliers through the public API, trains
# M/F over the flattened join and verifies the models agree.
snowflake-smoke:
	$(GO) run ./examples/snowflake

# Coverage gate: run the tests with -coverprofile and fail when total
# statement coverage drops below COVERAGE_BASELINE. CI uploads
# coverage.out as an artifact.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	./scripts/check_coverage.sh coverage.out $(COVERAGE_BASELINE)

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# cover runs before bench so the BENCH_*.json files the benchmarks write
# (with ns/op filled in) are the ones left on disk.
ci: fmt vet build race cover bench serve-smoke stream-smoke snowflake-smoke load-smoke drift-smoke crash-smoke
