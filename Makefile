# Single source of truth for the commands CI runs — invoke the same
# targets locally before pushing.

GO ?= go

.PHONY: all build test race bench serve-smoke stream-smoke fmt vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every benchmark, no unit tests. The
# parallel sweep writes BENCH_parallel.json (ns/op per algorithm x workers),
# the serving sweep writes BENCH_serve.json (rows/sec per model x workers)
# and the streaming sweep writes BENCH_stream.json (incremental vs full
# refresh cost x workers).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Serving smoke: datagen a tiny star schema, train -save both model kinds,
# boot cmd/serve and curl /healthz + predictions + /statsz.
serve-smoke:
	./scripts/serve_smoke.sh

# Streaming smoke: datagen -> train -> boot cmd/serve -fact -> ingest
# deltas over HTTP -> dimension update changes predictions live, the
# refresh-rows policy republishes the model, /statsz shows the counters.
stream-smoke:
	./scripts/stream_smoke.sh

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet build race bench serve-smoke stream-smoke
