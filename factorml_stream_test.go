package factorml

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPublicAPIStreaming drives the facade's streaming surface: NewStream,
// DB.Ingest, DB.Refresh, and the combined streaming prediction server.
func TestPublicAPIStreaming(t *testing.T) {
	db := openDB(t)
	items, err := db.CreateDimensionTable("items", []string{"price", "size"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := items.Append(int64(i), []float64{float64(10 + i), float64(i % 4)}); err != nil {
			t.Fatal(err)
		}
	}
	orders, err := db.CreateFactTable("orders", []string{"amount"}, true, items)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := orders.Append(int64(i), []int64{int64(i % 12)}, []float64{float64(i%9) * 0.5}, float64(i%4)); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := db.Dataset(orders)
	if err != nil {
		t.Fatal(err)
	}
	gres, err := TrainGMM(ds, Factorized, GMMConfig{K: 2, MaxIter: 2, Tol: 1e-300, NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SaveGMM("orders-gmm", gres.Model); err != nil {
		t.Fatal(err)
	}

	st, err := db.NewStream(orders, StreamPolicy{NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AttachGMM("orders-gmm", gres.Model); err != nil {
		t.Fatal(err)
	}
	res, err := db.Ingest(st, StreamBatch{
		Dims: []DimUpdate{{Table: "items", RID: 99, Features: []float64{200, 1}}},
		Facts: []FactRow{
			{SID: 300, FKs: []int64{99}, Features: []float64{1.5}, Target: 1},
			{SID: 301, FKs: []int64{3}, Features: []float64{2.5}, Target: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Facts != 2 || res.DimInserts != 1 {
		t.Fatalf("ingest result: %+v", res)
	}
	if st.Pending() != 2 {
		t.Fatalf("pending = %d", st.Pending())
	}
	rres, err := db.Refresh(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rres.Models) != 1 || rres.Models[0].RowsAbsorbed != 2 {
		t.Fatalf("refresh result: %+v", rres)
	}
	refreshed, err := st.GMM("orders-gmm")
	if err != nil {
		t.Fatal(err)
	}
	if d := refreshed.MaxParamDiff(gres.Model); d == 0 {
		t.Fatal("refresh did not change the model")
	}
	// The refreshed model is republished in the registry.
	infos, err := db.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Version != 2 {
		t.Fatalf("registry after refresh: %+v", infos)
	}
	if c := st.Counters(); c.FactsIngested != 2 || c.Refreshes != 1 {
		t.Fatalf("counters: %+v", c)
	}

	// The streaming server exposes ingest + stream stats over HTTP.
	handler, _, err := NewStreamingPredictionServer(db, "orders", []string{"items"}, ServeConfig{NumWorkers: 1}, StreamPolicy{NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/ingest",
		strings.NewReader(`{"facts":[{"sid":302,"fks":[3],"features":[0.5],"target":1}]}`)))
	if rec.Code != 200 {
		t.Fatalf("HTTP ingest: %d %s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	var stats struct {
		Stream StreamCounters `json:"stream"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Stream.FactsIngested != 1 || stats.Stream.AttachedModels != 1 {
		t.Fatalf("statsz stream section: %+v", stats.Stream)
	}
}
